"""Fault-window algebra shared by every injector.

A fault is *when* something is wrong (:class:`FaultWindow`) plus *what*
is wrong (the injector subclasses).  This module owns the "when":
validated half-open windows ``[start, start + duration)``, ordered
non-overlapping timelines, point queries, and the clipping rule that
makes installing a timeline mid-simulation well defined (windows whose
end is already in the past are skipped; a window straddling ``now`` is
clipped to its remaining duration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


class FaultOverlapError(ValueError):
    """Two windows (or injectors sharing a resource) overlap in time."""


@dataclass(frozen=True)
class FaultWindow:
    """One fault interval: ``[start, start + duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"fault duration must be positive, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end

    def overlaps(self, other: "FaultWindow") -> bool:
        return self.start < other.end and other.start < self.end


class FaultTimeline:
    """An ordered set of non-overlapping :class:`FaultWindow` intervals."""

    def __init__(self, windows: Sequence[FaultWindow] = ()) -> None:
        ordered = sorted(windows, key=lambda w: w.start)
        for a, b in zip(ordered, ordered[1:]):
            if b.start < a.end:
                raise FaultOverlapError(f"overlapping fault windows: {a} and {b}")
        self.windows: List[FaultWindow] = list(ordered)

    @classmethod
    def from_rows(cls, rows: Iterable[Tuple[float, float]]) -> "FaultTimeline":
        """Build from ``(start, duration)`` pairs."""
        return cls([FaultWindow(float(s), float(d)) for s, d in rows])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def active_at(self, t: float) -> bool:
        return any(w.contains(t) for w in self.windows)

    def window_at(self, t: float) -> "FaultWindow | None":
        for w in self.windows:
            if w.contains(t):
                return w
        return None

    def next_transition(self, t: float) -> float:
        """First window start/end strictly after ``t`` (inf if none)."""
        for w in self.windows:
            if w.start > t:
                return w.start
            if w.end > t:
                return w.end
        return float("inf")

    @property
    def total_active(self) -> float:
        return sum(w.duration for w in self.windows)

    @property
    def last_end(self) -> float:
        """End of the final window (0.0 for an empty timeline)."""
        return self.windows[-1].end if self.windows else 0.0

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def overlaps_timeline(self, other: "FaultTimeline") -> bool:
        """True when any window here intersects any window of ``other``."""
        return any(a.overlaps(b) for a in self.windows for b in other.windows)

    def union(self, other: "FaultTimeline") -> "FaultTimeline":
        """Merged timeline; touching/overlapping windows are coalesced."""
        merged: List[FaultWindow] = []
        for w in sorted(
            [*self.windows, *other.windows], key=lambda w: (w.start, w.end)
        ):
            if merged and w.start <= merged[-1].end:
                last = merged.pop()
                merged.append(
                    FaultWindow(last.start, max(last.end, w.end) - last.start)
                )
            else:
                merged.append(w)
        return FaultTimeline(merged)

    def edges(self) -> List[Tuple[float, bool]]:
        """Every transition as ``(time, active)``, in time order.

        Each window contributes ``(start, True)`` and ``(end, False)``;
        windows are already validated non-overlapping, so the flat list
        is the exact on/off schedule a wall-clock injector replays
        (:mod:`repro.realtime.chaos`) and a timeline-driven process can
        sleep against.
        """
        out: List[Tuple[float, bool]] = []
        for w in self.windows:
            out.append((w.start, True))
            out.append((w.end, False))
        return out

    def clipped_from(self, now: float) -> "FaultTimeline":
        """The timeline as seen from ``now``: past windows dropped,
        a straddling window clipped to its remaining duration."""
        remaining: List[FaultWindow] = []
        for w in self.windows:
            if w.end <= now:
                continue  # entirely in the past
            if w.start < now:
                remaining.append(FaultWindow(now, w.end - now))
            else:
                remaining.append(w)
        return FaultTimeline(remaining)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        spans = ", ".join(f"[{w.start:g},{w.end:g})" for w in self.windows)
        return f"FaultTimeline({spans})"
