"""Server-layer injectors: crash/stall, slowdown, GPU contention.

:class:`ServerCrash` is §II-A.3's blunt form (the service loop stops
draining; arrivals pile up and get rejected on resume).
:class:`ServerSlowdown` and :class:`GpuContention` are the graded
forms from the Cotter et al. accuracy-vs-performance axis: the GPU
still answers, just late — which is what actually produces
deadline-*constrained* degradation rather than a clean blackout.

The legacy :class:`OutageSchedule` API lives here too (re-exported
from :mod:`repro.workloads.faults` for backward compatibility), now
with mid-simulation installation fixed: windows already in the past
are skipped and a straddling window pauses only for its remainder.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.faults.base import FaultInjector, FaultTargets, resolve_server
from repro.faults.windows import FaultTimeline, FaultWindow
from repro.server.server import EdgeServer
from repro.sim.core import Environment

#: back-compat alias: an outage window is just a fault window
OutageWindow = FaultWindow


class ServerCrash(FaultInjector):
    """Stall the server's service loop for each window (blackout).

    With ``server=<name>`` the stall targets one member of a fleet
    pool (resource ``server.loop:<name>``; no longer a total failure —
    the rest of the fleet keeps serving).  The pool's prober notices
    the stalled heartbeat and ejects the member.
    """

    layer = "server"
    resource = "server.loop"
    total_failure = True

    def __init__(
        self,
        timeline: FaultTimeline,
        server: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(timeline, name)
        self.server = server
        if server is not None:
            self.resource = f"server.loop:{server}"
            self.total_failure = False

    def bind(self, env: Environment, targets: FaultTargets) -> None:
        resolve_server(targets, self.server, self.name)

    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        server = resolve_server(targets, self.server, self.name)
        server.pause(window.end - env.now)

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        pass  # pause() already encoded the resume instant


class ServerSlowdown(FaultInjector):
    """Multiply GPU batch latency by a fixed factor during windows.

    Models a driver regression, thermal throttling, or a co-scheduled
    job stealing SM time: requests still complete, but late enough that
    a fraction miss the 250 ms deadline.
    """

    layer = "server"
    resource = "server.gpu"

    def __init__(
        self,
        timeline: FaultTimeline,
        factor: float = 4.0,
        server: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        if factor <= 1.0:
            raise ValueError(f"slowdown factor must be > 1, got {factor}")
        super().__init__(timeline, name)
        self.factor = factor
        self.server = server
        if server is not None:
            self.resource = f"server.gpu:{server}"

    def bind(self, env: Environment, targets: FaultTargets) -> None:
        resolve_server(targets, self.server, self.name)

    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        server: EdgeServer = resolve_server(targets, self.server, self.name)
        server.gpu.set_slowdown(self.factor)

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        server: EdgeServer = resolve_server(targets, self.server, self.name)
        server.gpu.set_slowdown(1.0)


class GpuContention(FaultInjector):
    """Stochastic GPU slowdown spikes: a noisy co-tenant.

    Each window draws its own contention factor from ``targets.rng``
    (lognormal around ``mean_factor``), so spike severity varies across
    windows yet is bit-reproducible under the run's seed.
    """

    layer = "server"
    resource = "server.gpu"

    def __init__(
        self,
        timeline: FaultTimeline,
        mean_factor: float = 3.0,
        sigma: float = 0.25,
        server: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        if mean_factor <= 1.0:
            raise ValueError(f"mean contention factor must be > 1, got {mean_factor}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        super().__init__(timeline, name)
        self.mean_factor = mean_factor
        self.sigma = sigma
        self.server = server
        if server is not None:
            self.resource = f"server.gpu:{server}"

    def bind(self, env: Environment, targets: FaultTargets) -> None:
        resolve_server(targets, self.server, self.name)
        targets.require("rng", self.name)

    def _draw_factor(self, targets: FaultTargets) -> float:
        rng = targets.require("rng", self.name)
        if self.sigma <= 0:
            return self.mean_factor
        jitter = float(
            rng.lognormal(mean=-0.5 * self.sigma * self.sigma, sigma=self.sigma)
        )
        return max(1.0 + 1e-9, self.mean_factor * jitter)

    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        server: EdgeServer = resolve_server(targets, self.server, self.name)
        server.gpu.set_slowdown(self._draw_factor(targets))

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        server: EdgeServer = resolve_server(targets, self.server, self.name)
        server.gpu.set_slowdown(1.0)


class OutageSchedule:
    """A set of non-overlapping outage windows applied to a server.

    The original (pre-``repro.faults``) fault API, kept because tests,
    examples and downstream scripts build on it.  Internally it is a
    :class:`ServerCrash` over a :class:`FaultTimeline`.
    """

    def __init__(self, windows: Sequence[FaultWindow]) -> None:
        self._timeline = FaultTimeline(windows)

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[float, float]]) -> "OutageSchedule":
        """Build from ``(start, duration)`` pairs."""
        return cls([FaultWindow(float(s), float(d)) for s, d in rows])

    @property
    def windows(self):
        return self._timeline.windows

    def is_down(self, t: float) -> bool:
        return self._timeline.active_at(t)

    @property
    def total_downtime(self) -> float:
        return self._timeline.total_active

    def install(self, env: Environment, server: EdgeServer) -> None:
        """Apply the windows to ``server`` inside ``env``.

        Safe to call mid-simulation: windows whose end already passed
        are skipped, and a window straddling ``env.now`` pauses the
        server only for its remaining duration (the old behaviour
        paused immediately for each stale window's *full* length).
        """
        crash = ServerCrash(self._timeline, name="outage-schedule")
        crash.install(env, FaultTargets(server=server))
