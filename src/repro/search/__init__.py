"""Scenario compiler + adversarial scenario search.

The subsystem that turns "scenarios we imagined" into "scenarios the
search imagined for us":

* :mod:`repro.search.language` — the extended declarative scenario
  language (schedule generators, fault timelines, populations) with a
  canonical byte-stable JSON form;
* :mod:`repro.search.compiler` — lowering: generators to phase rows,
  specs to runnable :class:`~repro.experiments.chaos.ChaosScenario`s,
  populations to per-device configs;
* :mod:`repro.search.feasibility` — the analytic oracle winnability
  check that keeps the search honest;
* :mod:`repro.search.runner` — deterministic scoring (controller run +
  oracle witness) fanned out over the experiment process pool;
* :mod:`repro.search.search` — the coverage-driven adversarial loop;
* :mod:`repro.search.minimize` — delta-debugging shrinker;
* :mod:`repro.search.golden` — minimized findings as byte-replayable
  chaos regression goldens (``tests/goldens/scenarios/``).

CLI: ``repro compile`` (validate/lower a spec) and ``repro search``
(find, minimize and emit goldens).  See ``docs/scenarios.md``.
"""

from repro.search.compiler import (
    build_injectors,
    compile_chaos,
    compile_flat,
    compile_scenario,
    expand_population,
)
from repro.search.feasibility import FeasibilityReport, analyze_feasibility
from repro.search.golden import (
    GOLDEN_VERSION,
    dumps_golden,
    golden_document,
    load_golden,
    replay_golden,
    write_goldens,
)
from repro.search.language import (
    FAULT_KINDS,
    LOAD_KINDS,
    NETWORK_KINDS,
    ScenarioSpec,
    SpecError,
    load_spec,
)
from repro.search.minimize import MinimizeResult, minimize
from repro.search.runner import EvalParams, EvalResult, evaluate_many, evaluate_spec
from repro.search.search import (
    SearchConfig,
    SearchResult,
    run_search,
    spec_signature,
)

__all__ = [
    "FAULT_KINDS",
    "GOLDEN_VERSION",
    "LOAD_KINDS",
    "NETWORK_KINDS",
    "EvalParams",
    "EvalResult",
    "FeasibilityReport",
    "MinimizeResult",
    "ScenarioSpec",
    "SearchConfig",
    "SearchResult",
    "SpecError",
    "analyze_feasibility",
    "build_injectors",
    "compile_chaos",
    "compile_flat",
    "compile_scenario",
    "dumps_golden",
    "evaluate_many",
    "evaluate_spec",
    "expand_population",
    "golden_document",
    "load_golden",
    "load_spec",
    "minimize",
    "replay_golden",
    "run_search",
    "spec_signature",
    "write_goldens",
]
