"""The extended scenario language: every chaos run as one JSON artifact.

:mod:`repro.io.config` serializes the *benign* declarative scenario
(device, schedules, seed).  This module promotes that seed format to a
full language — the superset a chaos or supervision run needs:

* **schedule generators** — ``network``/``load`` may be the flat phase
  rows the base format uses, *or* a generator dict (``diurnal`` traffic
  cycles, ``flash_crowd`` spikes, ``mobility``-driven link traces) the
  compiler lowers to explicit phases;
* **fault timelines** — a ``faults`` list composing the
  :mod:`repro.faults` window/timeline algebra declaratively (kind +
  parameters + ``(start, duration)`` windows);
* **populations** — a ``population`` block describing a heterogeneous
  device fleet that expands to per-device configs;
* **stacks** — ``resilience`` / ``supervision`` switches for the
  defense layers.

Determinism contract: :meth:`ScenarioSpec.to_json` is canonical.  For
any spec, ``from_json(to_json(spec)).to_json()`` is **byte-identical**
to ``to_json(spec)`` — normalization (key order, float coercion,
window ordering) happens once, in :meth:`ScenarioSpec.from_dict`, and
is idempotent.  Golden scenario files and the adversarial search both
lean on this.

Unknown keys are *errors everywhere*: a typoed field must never be
silently dropped (the failure mode the base format had — see
:func:`repro.io.config.scenario_from_dict`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.windows import FaultTimeline

#: format version stamped into golden scenario files
SPEC_VERSION = 1

# ----------------------------------------------------------------------
# field schemas: name -> coercion type (None = validated elsewhere)
# ----------------------------------------------------------------------

#: fault kinds -> parameter schema (all optional; injector defaults apply)
FAULT_KINDS: Dict[str, Dict[str, type]] = {
    "bandwidth_collapse": {"factor": float},
    "burst_loss": {"loss": float, "burst": float},
    "latency_spike": {"extra_delay": float, "extra_jitter": float},
    "server_crash": {"server": str},
    "server_slowdown": {"factor": float, "server": str},
    "gpu_contention": {"mean_factor": float, "sigma": float, "server": str},
    "cpu_throttle": {"factor": float},
    "camera_stall": {},
    "controller_kill": {"restart": str},
    "server_kill": {"server": str},
    "device_reboot": {},
}

#: network generator kinds -> parameter schema
NETWORK_KINDS: Dict[str, Dict[str, type]] = {
    "phases": {"rows": None},
    "diurnal": {
        "period": float,
        "base_bandwidth": float,
        "dip": float,
        "loss_peak": float,
        "step": float,
        "duration": float,
    },
    "mobility": {
        "radius_near": float,
        "radius_far": float,
        "lap_seconds": float,
        "laps": int,
        "step": float,
    },
}

#: load generator kinds -> parameter schema
LOAD_KINDS: Dict[str, Dict[str, type]] = {
    "phases": {"rows": None},
    "diurnal": {
        "period": float,
        "base_rate": float,
        "peak_rate": float,
        "step": float,
        "duration": float,
    },
    "flash_crowd": {
        "base_rate": float,
        "peak_rate": float,
        "at": float,
        "ramp": float,
        "hold": float,
        "decay": float,
        "step": float,
    },
}

POPULATION_KEYS: Dict[str, type] = {
    "size": int,
    "profiles": None,
    "models": None,
    "name_prefix": str,
}

#: multi-server fleet topology block (mirrors
#: :class:`repro.fleet.config.FleetConfig`; ``servers`` is required)
TOPOLOGY_KEYS: Dict[str, Optional[type]] = {
    "servers": None,
    "policy": str,
    "failover": bool,
    "admission_rate": float,
    "admission_burst": float,
    "probe_period": float,
    "stale_grace_periods": float,
    "fail_threshold": int,
    "probation": float,
}

#: top-level keys of the extended language (superset of the base format)
TOP_LEVEL_KEYS = (
    "controller",
    "seed",
    "duration",
    "device",
    "gpu",
    "network",
    "load",
    "faults",
    "population",
    "topology",
    "resilience",
    "supervision",
    "batch_policy",
    "uplink_queue_bytes",
)

DEVICE_KEYS = (
    "name",
    "profile",
    "model",
    "frame_rate",
    "deadline",
    "measure_period",
    "t_window_buckets",
    "total_frames",
    "resolution",
    "jpeg_quality",
)

GPU_KEYS = ("base_latency", "per_item", "jitter_sigma")


class SpecError(ValueError):
    """A scenario spec failed validation (unknown key, bad value)."""


def _reject_unknown(data: Dict[str, Any], allowed, where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            f"unknown {where} field(s) {unknown}; "
            f"valid fields: {sorted(allowed)}"
        )


def _coerce(value: Any, kind: Optional[type], where: str) -> Any:
    if kind is None:
        return value
    try:
        if kind is bool:
            if not isinstance(value, bool):
                raise TypeError
            return value
        return kind(value)
    except (TypeError, ValueError):
        raise SpecError(f"{where}: expected {kind.__name__}, got {value!r}")


def _norm_windows(rows: Any, where: str) -> List[List[float]]:
    if not isinstance(rows, (list, tuple)) or not rows:
        raise SpecError(f"{where}: 'windows' must be a non-empty list of "
                        f"[start, duration] pairs, got {rows!r}")
    out = []
    for row in rows:
        if not isinstance(row, (list, tuple)) or len(row) != 2:
            raise SpecError(f"{where}: bad window {row!r} (need [start, duration])")
        out.append([float(row[0]), float(row[1])])
    out.sort()
    # delegate overlap/positivity validation to the faults algebra
    FaultTimeline.from_rows([tuple(r) for r in out])
    return out


def _norm_fault(entry: Any, index: int) -> Dict[str, Any]:
    where = f"faults[{index}]"
    if not isinstance(entry, dict):
        raise SpecError(f"{where}: expected an object, got {entry!r}")
    kind = entry.get("kind")
    if kind not in FAULT_KINDS:
        raise SpecError(
            f"{where}: unknown fault kind {kind!r}; "
            f"valid kinds: {sorted(FAULT_KINDS)}"
        )
    schema = FAULT_KINDS[kind]
    _reject_unknown(entry, {"kind", "windows", *schema}, where)
    if "windows" not in entry:
        raise SpecError(f"{where}: fault needs 'windows'")
    out: Dict[str, Any] = {"kind": kind, "windows": _norm_windows(entry["windows"], where)}
    for key, typ in schema.items():
        if key in entry:
            out[key] = _coerce(entry[key], typ, f"{where}.{key}")
    return out


def _norm_schedule(value: Any, kinds: Dict[str, Dict[str, type]],
                   row_len: int, where: str) -> Any:
    """Normalize a schedule field: phase rows, or a generator dict."""
    if isinstance(value, dict):
        kind = value.get("kind")
        if kind not in kinds:
            raise SpecError(
                f"{where}: unknown generator kind {kind!r}; "
                f"valid kinds: {sorted(kinds)}"
            )
        schema = kinds[kind]
        _reject_unknown(value, {"kind", *schema}, where)
        out: Dict[str, Any] = {"kind": kind}
        for key, typ in schema.items():
            if key in value:
                if key == "rows":
                    out[key] = _norm_rows(value[key], row_len, f"{where}.rows")
                else:
                    out[key] = _coerce(value[key], typ, f"{where}.{key}")
        if kind == "phases" and "rows" not in out:
            raise SpecError(f"{where}: phases generator needs 'rows'")
        return out
    return _norm_rows(value, row_len, where)


def _norm_rows(rows: Any, row_len: int, where: str) -> List[List[float]]:
    if not isinstance(rows, (list, tuple)) or not rows:
        raise SpecError(f"{where}: expected a non-empty list of rows, got {rows!r}")
    out = []
    for row in rows:
        if not isinstance(row, (list, tuple)) or len(row) != row_len:
            raise SpecError(
                f"{where}: bad row {row!r} (need {row_len} numbers)"
            )
        out.append([float(x) for x in row])
    return out


@dataclass(frozen=True)
class ScenarioSpec:
    """One normalized scenario in the extended language.

    Construct through :meth:`from_dict` / :meth:`from_json` (which
    validate and normalize) — the constructor trusts its input.
    ``data`` is the sparse normalized dict; only keys the author set
    are present, so specs stay small and mutations stay local.
    """

    data: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ScenarioSpec":
        if not isinstance(raw, dict):
            raise SpecError(f"scenario spec must be an object, got {raw!r}")
        _reject_unknown(raw, TOP_LEVEL_KEYS, "scenario")
        out: Dict[str, Any] = {}
        if "controller" in raw:
            out["controller"] = _coerce(raw["controller"], str, "controller")
        if "seed" in raw:
            out["seed"] = _coerce(raw["seed"], int, "seed")
        if "duration" in raw:
            out["duration"] = _coerce(raw["duration"], float, "duration")
        if "batch_policy" in raw:
            out["batch_policy"] = _coerce(raw["batch_policy"], str, "batch_policy")
        if "uplink_queue_bytes" in raw:
            out["uplink_queue_bytes"] = _coerce(
                raw["uplink_queue_bytes"], float, "uplink_queue_bytes"
            )
        for flag in ("resilience", "supervision"):
            if flag in raw:
                out[flag] = _coerce(raw[flag], bool, flag)

        if "device" in raw:
            dev = raw["device"]
            if not isinstance(dev, dict):
                raise SpecError(f"device: expected an object, got {dev!r}")
            _reject_unknown(dev, DEVICE_KEYS, "device")
            norm_dev: Dict[str, Any] = {}
            for key in DEVICE_KEYS:
                if key not in dev:
                    continue
                if key in ("name", "profile", "model"):
                    norm_dev[key] = _coerce(dev[key], str, f"device.{key}")
                elif key in ("t_window_buckets", "total_frames", "resolution"):
                    norm_dev[key] = _coerce(dev[key], int, f"device.{key}")
                else:
                    norm_dev[key] = _coerce(dev[key], float, f"device.{key}")
            out["device"] = norm_dev

        if "gpu" in raw:
            gpu = raw["gpu"]
            if not isinstance(gpu, dict):
                raise SpecError(f"gpu: expected an object, got {gpu!r}")
            _reject_unknown(gpu, GPU_KEYS, "gpu")
            out["gpu"] = {
                k: _coerce(gpu[k], float, f"gpu.{k}") for k in GPU_KEYS if k in gpu
            }

        if "network" in raw and raw["network"] is not None:
            out["network"] = _norm_schedule(
                raw["network"], NETWORK_KINDS, 3, "network"
            )
        if "load" in raw and raw["load"] is not None:
            out["load"] = _norm_schedule(raw["load"], LOAD_KINDS, 2, "load")

        if "faults" in raw:
            faults = raw["faults"]
            if not isinstance(faults, (list, tuple)):
                raise SpecError(f"faults: expected a list, got {faults!r}")
            out["faults"] = [_norm_fault(f, i) for i, f in enumerate(faults)]

        if "topology" in raw:
            topo = raw["topology"]
            if not isinstance(topo, dict):
                raise SpecError(f"topology: expected an object, got {topo!r}")
            _reject_unknown(topo, TOPOLOGY_KEYS, "topology")
            if "servers" not in topo:
                raise SpecError("topology: needs 'servers'")
            servers = topo["servers"]
            if not isinstance(servers, (list, tuple)) or not servers:
                raise SpecError(
                    "topology.servers: expected a non-empty list of names, "
                    f"got {servers!r}"
                )
            names = [_coerce(n, str, "topology.servers[]") for n in servers]
            if len(set(names)) != len(names):
                raise SpecError(f"topology.servers: duplicate names in {names}")
            norm_topo: Dict[str, Any] = {"servers": names}
            for key, typ in TOPOLOGY_KEYS.items():
                if key == "servers" or key not in topo:
                    continue
                norm_topo[key] = _coerce(topo[key], typ, f"topology.{key}")
            out["topology"] = norm_topo

        if "population" in raw:
            pop = raw["population"]
            if not isinstance(pop, dict):
                raise SpecError(f"population: expected an object, got {pop!r}")
            _reject_unknown(pop, POPULATION_KEYS, "population")
            if "size" not in pop:
                raise SpecError("population: needs 'size'")
            norm_pop: Dict[str, Any] = {"size": _coerce(pop["size"], int, "population.size")}
            if norm_pop["size"] < 1:
                raise SpecError(f"population.size must be >= 1, got {norm_pop['size']}")
            for key in ("profiles", "models"):
                if key in pop:
                    names = pop[key]
                    if not isinstance(names, (list, tuple)) or not names:
                        raise SpecError(
                            f"population.{key}: expected a non-empty list of names"
                        )
                    norm_pop[key] = [
                        _coerce(n, str, f"population.{key}[]") for n in names
                    ]
            if "name_prefix" in pop:
                norm_pop["name_prefix"] = _coerce(
                    pop["name_prefix"], str, "population.name_prefix"
                )
            out["population"] = norm_pop

        spec = cls(out)
        spec.validate()
        return spec

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Cross-field checks that need the registries (cheap, import-lazy)."""
        from repro.experiments.standard import extended_controllers
        from repro.models.device_profiles import DEVICE_PROFILES
        from repro.models.zoo import MODEL_ZOO

        controller = self.data.get("controller", "FrameFeedback")
        if controller not in extended_controllers():
            raise SpecError(
                f"unknown controller {controller!r}; "
                f"available: {sorted(extended_controllers())}"
            )
        dev = self.data.get("device", {})
        profile = dev.get("profile")
        if profile is not None and profile not in DEVICE_PROFILES:
            raise SpecError(
                f"unknown device profile {profile!r}; "
                f"available: {sorted(DEVICE_PROFILES)}"
            )
        model = dev.get("model")
        if model is not None and model not in MODEL_ZOO:
            raise SpecError(
                f"unknown model {model!r}; available: {sorted(MODEL_ZOO)}"
            )
        topo = self.data.get("topology")
        if topo is not None:
            from repro.fleet.config import ROUTER_POLICIES

            policy = topo.get("policy")
            if policy is not None and policy not in ROUTER_POLICIES:
                raise SpecError(
                    f"topology.policy: unknown policy {policy!r}; "
                    f"valid policies: {sorted(ROUTER_POLICIES)}"
                )
        # Fault timelines naming a server must target a declared member
        # — a typoed name silently hitting nothing is the exact failure
        # mode the unknown-key rule exists to kill.
        servers = set(topo["servers"]) if topo is not None else None
        for i, entry in enumerate(self.data.get("faults", [])):
            target = entry.get("server")
            if target is None:
                continue
            if servers is None:
                raise SpecError(
                    f"faults[{i}]: fault targets server {target!r} but the "
                    "spec has no 'topology' block"
                )
            if target not in servers:
                raise SpecError(
                    f"faults[{i}]: unknown server {target!r}; "
                    f"valid servers: {sorted(servers)}"
                )
        pop = self.data.get("population")
        if pop:
            for name in pop.get("profiles", ()):
                if name not in DEVICE_PROFILES:
                    raise SpecError(
                        f"population: unknown profile {name!r}; "
                        f"available: {sorted(DEVICE_PROFILES)}"
                    )
            for name in pop.get("models", ()):
                if name not in MODEL_ZOO:
                    raise SpecError(
                        f"population: unknown model {name!r}; "
                        f"available: {sorted(MODEL_ZOO)}"
                    )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def controller(self) -> str:
        return self.data.get("controller", "FrameFeedback")

    @property
    def seed(self) -> int:
        return self.data.get("seed", 0)

    @property
    def faults(self) -> List[Dict[str, Any]]:
        return self.data.get("faults", [])

    def replace(self, **updates: Any) -> "ScenarioSpec":
        """A new validated spec with top-level keys replaced.

        Pass ``key=None`` to delete a key.
        """
        merged = {**self.data}
        for key, value in updates.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        return ScenarioSpec.from_dict(merged)

    # ------------------------------------------------------------------
    # canonical serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The normalized sparse dict (deep copy; safe to mutate)."""
        return json.loads(self.to_json())

    def to_json(self) -> str:
        """Canonical byte-stable serialization (newline-terminated)."""
        return json.dumps(self.data, indent=1, sort_keys=True) + "\n"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ScenarioSpec) and self.to_json() == other.to_json()

    def __hash__(self) -> int:
        return hash(self.to_json())


def load_spec(path: str) -> ScenarioSpec:
    """Read and validate a scenario spec file."""
    with open(path) as fh:
        return ScenarioSpec.from_dict(json.load(fh))
