"""Delta-debugging minimizer: shrink a finding to its essence.

A raw search finding carries everything the sampler happened to throw
at the run; most of it is incidental.  Before a failing scenario is
committed as a chaos regression golden it is shrunk to a (locally)
minimal spec that *still fails the same way*: each simplification step
is kept only if the re-evaluated candidate remains oracle-feasible
**and** keeps scoring at or above the failure threshold.

Steps are tried in a fixed order (whole faults, then extra windows,
then schedule phases, then stream length, then parameter rounding), so
minimization is deterministic: the same finding always shrinks to the
same golden.  Like classic ddmin the result is a local minimum — no
single remaining simplification can be removed — not a global one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.search.language import ScenarioSpec
from repro.search.runner import EvalParams, EvalResult, evaluate_spec

#: never shrink a stream below this many frames (QoS means get noisy)
MIN_FRAMES = 300


@dataclass
class MinimizeResult:
    """The shrunk finding plus the audit trail of accepted steps."""

    original: EvalResult
    minimized: EvalResult
    #: accepted simplifications, in application order
    steps: List[str] = field(default_factory=list)
    #: candidate evaluations spent
    evaluations: int = 0


def _without_index(items: List, index: int) -> List:
    return [x for i, x in enumerate(items) if i != index]


def _candidates(data: Dict[str, Any]) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield ``(description, simplified-spec-dict)`` attempts, in order.

    Each attempt is one simplification applied to ``data``; the caller
    re-evaluates and either accepts (restarting from the smaller spec)
    or moves on.
    """
    faults = data.get("faults", [])
    # 1. drop a whole fault
    for i, entry in enumerate(faults):
        smaller = {**data}
        remaining = _without_index(faults, i)
        if remaining:
            smaller["faults"] = remaining
        else:
            smaller.pop("faults", None)
        yield f"drop fault {entry['kind']}[{i}]", smaller
    # 2. drop one window of a multi-window fault
    for i, entry in enumerate(faults):
        if len(entry["windows"]) < 2:
            continue
        for j in range(len(entry["windows"])):
            smaller = {**data, "faults": [dict(f) for f in faults]}
            smaller["faults"][i]["windows"] = _without_index(entry["windows"], j)
            yield f"drop window {j} of fault {entry['kind']}[{i}]", smaller
    # 3. drop the load / network field entirely
    if "load" in data:
        yield "drop load schedule", {k: v for k, v in data.items() if k != "load"}
    if "network" in data:
        yield "drop network schedule", {k: v for k, v in data.items() if k != "network"}
    # 4. drop individual explicit phases (keep the t=0 row)
    for key in ("network", "load"):
        rows = data.get(key)
        if isinstance(rows, list) and len(rows) > 1:
            for i in range(1, len(rows)):
                smaller = {**data, key: _without_index(rows, i)}
                yield f"drop {key} phase {i}", smaller
    # 5. shorten the stream
    dev = data.get("device", {})
    frames = int(dev.get("total_frames", 4000))
    for frac in (0.5, 0.75):
        shorter = max(MIN_FRAMES, int(frames * frac))
        if shorter < frames:
            smaller = {**data, "device": {**dev, "total_frames": shorter}}
            yield f"shorten stream to {shorter} frames", smaller
    # 6. round numeric fault parameters (reviewable goldens)
    for i, entry in enumerate(faults):
        rounded = {
            k: (round(v, 2) if isinstance(v, float) and k != "windows" else v)
            for k, v in entry.items()
        }
        rounded["windows"] = [[round(s, 1), round(d, 1)] for s, d in entry["windows"]]
        if rounded != entry:
            smaller = {**data, "faults": [dict(f) for f in faults]}
            smaller["faults"][i] = rounded
            yield f"round parameters of fault {entry['kind']}[{i}]", smaller


def minimize(
    finding: EvalResult,
    params: EvalParams = EvalParams(),
    max_evaluations: int = 64,
) -> MinimizeResult:
    """Shrink ``finding`` while it keeps failing and stays feasible."""
    if not finding.failing(params):
        raise ValueError(
            "minimize() wants a failing finding "
            f"(feasible={finding.feasible}, score={finding.score})"
        )
    current = finding
    steps: List[str] = []
    spent = 0
    progress = True
    while progress and spent < max_evaluations:
        progress = False
        for description, attempt_data in _candidates(current.spec.to_dict()):
            if spent >= max_evaluations:
                break
            try:
                attempt_spec = ScenarioSpec.from_dict(attempt_data)
            except ValueError:
                continue
            if attempt_spec == current.spec:
                continue
            attempt = evaluate_spec(attempt_spec, params)
            spent += 1
            if attempt.failing(params):
                current = attempt
                steps.append(description)
                progress = True
                break  # restart the sweep from the smaller spec
    return MinimizeResult(
        original=finding, minimized=current, steps=steps, evaluations=spent
    )
