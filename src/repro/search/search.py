"""Coverage-driven adversarial scenario search.

A deterministic random-restart hill climb over the declarative
scenario space: sample feasible candidates, score each by the
controller's deadline-violation rate (:mod:`repro.search.runner`),
then spend the remaining budget mutating the elite — perturbing fault
windows and magnitudes, schedule shapes, load spikes — while rejection
sampling keeps every submitted candidate analytically winnable.

Determinism contract: the whole search is a pure function of
``SearchConfig``.  All randomness flows from one
``np.random.default_rng(seed)`` whose draw order depends only on
sampled content (never on wall-clock or worker scheduling), and
:func:`repro.search.runner.evaluate_many` returns results in
submission order — so ``repro search --seed N --budget K`` twice
yields byte-identical best-scenario JSON and identical scores
(``tests/test_search_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.search.feasibility import analyze_feasibility
from repro.search.language import ScenarioSpec
from repro.search.runner import EvalParams, EvalResult, evaluate_many

#: fault kinds the sampler draws from (process kills are excluded: the
#: analytic feasibility model refuses to certify them, so they could
#: never become findings — see repro.search.feasibility)
SEARCH_FAULT_KINDS = (
    "bandwidth_collapse",
    "burst_loss",
    "latency_spike",
    "server_crash",
    "server_slowdown",
    "gpu_contention",
    "cpu_throttle",
)

#: bandwidth levels (paper units) abrupt network phases step between
BANDWIDTH_LEVELS = (10.0, 6.0, 4.0, 2.0, 1.0, 0.7, 0.5)


@dataclass(frozen=True)
class SearchConfig:
    """Everything that determines one search run."""

    seed: int = 0
    #: total candidate evaluations (each is a controller + oracle run)
    budget: int = 24
    #: candidates per round (one pool fan-out)
    round_size: int = 8
    #: stream length of every candidate (short: search wants many runs)
    frames: int = 900
    controller: str = "FrameFeedback"
    params: EvalParams = field(default_factory=EvalParams)
    #: elites kept as mutation parents
    elite: int = 3
    #: probability a slot is a fresh random restart (vs a mutation)
    restart_prob: float = 0.3
    #: relative scale of numeric perturbations
    mutation_scale: float = 0.25
    workers: Optional[int] = None
    #: rejection-sampling attempts before giving up on a slot
    max_attempts: int = 64


@dataclass
class SearchResult:
    """Everything a search run produced, in evaluation order."""

    config: SearchConfig
    evaluations: List[EvalResult] = field(default_factory=list)

    @property
    def best(self) -> List[EvalResult]:
        """Feasible candidates, highest violation score first (stable)."""
        feasible = [e for e in self.evaluations if e.feasible]
        return sorted(feasible, key=lambda e: -e.score)

    @property
    def failures(self) -> List[EvalResult]:
        """Feasible candidates at or above the failure threshold."""
        return [e for e in self.best if e.failing(self.config.params)]

    def distinct_failures(self, limit: int = 3) -> List[EvalResult]:
        """Top failures deduplicated by structural signature.

        Mutation lineages produce near-clones; goldens want *different*
        controller-breaking mechanisms, so only the best exemplar per
        (fault kinds, schedule kinds) signature survives.
        """
        seen = set()
        out: List[EvalResult] = []
        for e in self.failures:
            sig = spec_signature(e.spec)
            if sig in seen:
                continue
            seen.add(sig)
            out.append(e)
            if len(out) >= limit:
                break
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.config.seed,
            "budget": self.config.budget,
            "controller": self.config.controller,
            "params": self.config.params.as_dict(),
            "evaluated": len(self.evaluations),
            "feasible": sum(1 for e in self.evaluations if e.feasible),
            "failures": len(self.failures),
            "best": [e.as_dict() for e in self.best[:5]],
        }


def spec_signature(spec: ScenarioSpec) -> Tuple:
    """The structural (fault kinds, network kind, load kind) signature.

    Two specs with the same signature break the controller through the
    same *mechanism*; golden selection dedups on it, both before and
    after minimization (near-clone mutation lineages often collapse to
    the same minimal scenario).
    """
    net = spec.data.get("network")
    load = spec.data.get("load")
    return (
        tuple(sorted(f["kind"] for f in spec.faults)),
        net["kind"] if isinstance(net, dict) else ("phases" if net else None),
        load["kind"] if isinstance(load, dict) else ("phases" if load else None),
    )




# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
def _sample_network(rng: np.random.Generator, horizon: float) -> Optional[Any]:
    """One random network field (rows, generator dict, or None)."""
    choice = rng.integers(0, 4)
    if choice == 0:
        return None
    if choice == 1:  # abrupt piecewise phases
        n = int(rng.integers(2, 6))
        starts = np.sort(rng.uniform(2.0, horizon - 2.0, size=n - 1))
        rows = [[0.0, 10.0, 0.0]]
        for s in starts:
            bw = float(rng.choice(BANDWIDTH_LEVELS))
            loss = float(rng.choice((0.0, 0.0, 3.0, 7.0, 10.0)))
            rows.append([round(float(s), 3), bw, loss])
        return rows
    if choice == 2:
        return {
            "kind": "diurnal",
            "period": round(float(rng.uniform(20.0, horizon)), 3),
            "base_bandwidth": 10.0,
            "dip": round(float(rng.uniform(4.0, 9.5)), 3),
            "loss_peak": round(float(rng.choice((0.0, 3.0, 7.0))), 3),
            "step": 2.0,
        }
    return {
        "kind": "mobility",
        "radius_near": 5.0,
        "radius_far": round(float(rng.uniform(30.0, 60.0)), 3),
        "lap_seconds": round(float(rng.uniform(15.0, max(20.0, horizon))), 3),
        "step": 2.0,
    }


def _sample_load(rng: np.random.Generator, horizon: float) -> Optional[Any]:
    choice = rng.integers(0, 4)
    if choice == 0:
        return None
    if choice == 1:  # abrupt piecewise phases
        n = int(rng.integers(2, 5))
        starts = np.sort(rng.uniform(2.0, horizon - 2.0, size=n - 1))
        rows = [[0.0, 0.0]]
        for s in starts:
            rows.append([round(float(s), 3), round(float(rng.uniform(0.0, 150.0)), 3)])
        return rows
    if choice == 2:
        return {
            "kind": "flash_crowd",
            "base_rate": round(float(rng.uniform(0.0, 40.0)), 3),
            "peak_rate": round(float(rng.uniform(100.0, 160.0)), 3),
            "at": round(float(rng.uniform(2.0, horizon * 0.6)), 3),
            "ramp": round(float(rng.uniform(1.0, 6.0)), 3),
            "hold": round(float(rng.uniform(3.0, 12.0)), 3),
            "decay": round(float(rng.uniform(1.0, 8.0)), 3),
        }
    return {
        "kind": "diurnal",
        "period": round(float(rng.uniform(20.0, horizon)), 3),
        "base_rate": 0.0,
        "peak_rate": round(float(rng.uniform(80.0, 150.0)), 3),
        "step": 2.0,
    }


def _sample_fault(rng: np.random.Generator, horizon: float) -> Dict[str, Any]:
    kind = str(rng.choice(SEARCH_FAULT_KINDS))
    start = round(float(rng.uniform(2.0, horizon * 0.7)), 3)
    dur = round(float(rng.uniform(2.0, min(12.0, horizon - start - 1.0))), 3)
    out: Dict[str, Any] = {"kind": kind, "windows": [[start, max(dur, 2.0)]]}
    if kind == "bandwidth_collapse":
        out["factor"] = round(float(rng.uniform(0.01, 0.3)), 4)
    elif kind == "burst_loss":
        out["loss"] = round(float(rng.uniform(0.1, 0.5)), 4)
        out["burst"] = round(float(rng.uniform(2.0, 10.0)), 3)
    elif kind == "latency_spike":
        out["extra_delay"] = round(float(rng.uniform(0.03, 0.3)), 4)
    elif kind == "server_slowdown":
        out["factor"] = round(float(rng.uniform(2.0, 8.0)), 3)
    elif kind == "gpu_contention":
        out["mean_factor"] = round(float(rng.uniform(2.0, 5.0)), 3)
        out["sigma"] = round(float(rng.uniform(0.1, 0.4)), 4)
    elif kind == "cpu_throttle":
        out["factor"] = round(float(rng.uniform(1.5, 4.0)), 3)
    return out


def sample_spec(rng: np.random.Generator, config: SearchConfig) -> ScenarioSpec:
    """One random candidate (may be infeasible; caller filters)."""
    frame_rate = 30.0
    horizon = config.frames / frame_rate
    data: Dict[str, Any] = {
        "controller": config.controller,
        "seed": int(rng.integers(0, 2**16)),
        "device": {"total_frames": int(config.frames)},
    }
    if rng.random() < 0.15:  # heterogeneous hardware occasionally
        data["device"]["profile"] = "pi3b_r1_2"
    net = _sample_network(rng, horizon)
    if net is not None:
        data["network"] = net
    load = _sample_load(rng, horizon)
    if load is not None:
        data["load"] = load
    n_faults = int(rng.integers(0, 4))
    faults = []
    for _ in range(n_faults):
        faults.append(_sample_fault(rng, horizon))
    if faults:
        data["faults"] = faults
    try:
        return ScenarioSpec.from_dict(data)
    except ValueError:
        # overlapping same-resource windows etc.: resample via caller
        return sample_spec(rng, config)


# ----------------------------------------------------------------------
# mutation
# ----------------------------------------------------------------------
def _perturb(rng: np.random.Generator, value: float, scale: float,
             lo: float, hi: float) -> float:
    span = max(abs(value), (hi - lo) * 0.1)
    return round(float(np.clip(value + rng.normal(0.0, scale * span), lo, hi)), 4)


def mutate_spec(
    rng: np.random.Generator, spec: ScenarioSpec, config: SearchConfig
) -> ScenarioSpec:
    """A locally perturbed neighbour of ``spec`` (validated)."""
    horizon = config.frames / 30.0
    data = spec.to_dict()
    scale = config.mutation_scale
    ops = 1 + int(rng.integers(0, 2))
    for _ in range(ops):
        op = rng.integers(0, 5)
        if op == 0 and data.get("faults"):
            # perturb one fault's window placement/length
            entry = data["faults"][int(rng.integers(0, len(data["faults"])))]
            w = entry["windows"][int(rng.integers(0, len(entry["windows"])))]
            w[0] = _perturb(rng, w[0], scale, 0.5, horizon - 2.0)
            w[1] = _perturb(rng, w[1], scale, 1.0, 15.0)
        elif op == 1 and data.get("faults"):
            # perturb one fault's magnitude parameter
            entry = data["faults"][int(rng.integers(0, len(data["faults"])))]
            numeric = [k for k, v in entry.items()
                       if k not in ("kind", "windows") and isinstance(v, float)]
            if numeric:
                key = numeric[int(rng.integers(0, len(numeric)))]
                lo, hi = (0.01, 0.9) if key in ("factor", "loss", "sigma") else (0.01, 12.0)
                if entry["kind"] in ("server_slowdown", "cpu_throttle",
                                     "gpu_contention") and key != "sigma":
                    lo, hi = 1.2, 10.0
                entry[key] = _perturb(rng, entry[key], scale, lo, hi)
        elif op == 2 and isinstance(data.get("network"), list):
            row = data["network"][int(rng.integers(0, len(data["network"])))]
            row[1] = _perturb(rng, row[1], scale, 0.3, 10.0)
            row[2] = _perturb(rng, row[2], scale, 0.0, 15.0)
        elif op == 3 and data.get("load") is not None:
            load = data["load"]
            if isinstance(load, list):
                row = load[int(rng.integers(0, len(load)))]
                row[1] = _perturb(rng, row[1], scale, 0.0, 170.0)
            elif load.get("kind") == "flash_crowd":
                load["peak_rate"] = _perturb(
                    rng, load.get("peak_rate", 150.0), scale, 60.0, 170.0
                )
        else:
            # structural: add or drop a fault
            faults = data.setdefault("faults", [])
            if faults and rng.random() < 0.5:
                faults.pop(int(rng.integers(0, len(faults))))
                if not faults:
                    del data["faults"]
            else:
                faults.append(_sample_fault(rng, horizon))
    try:
        return ScenarioSpec.from_dict(data)
    except ValueError:
        return sample_spec(rng, config)


# ----------------------------------------------------------------------
# the loop
# ----------------------------------------------------------------------
def _next_candidate(
    rng: np.random.Generator,
    config: SearchConfig,
    elites: List[EvalResult],
    seen: set,
) -> Optional[ScenarioSpec]:
    """One analytically-feasible, not-yet-evaluated candidate."""
    for _ in range(config.max_attempts):
        if not elites or rng.random() < config.restart_prob:
            cand = sample_spec(rng, config)
        else:
            parent = elites[int(rng.integers(0, len(elites)))]
            cand = mutate_spec(rng, parent.spec, config)
        key = cand.to_json()
        if key in seen:
            continue
        try:
            report = analyze_feasibility(
                cand,
                feasible_frac=config.params.feasible_frac,
                blackout_limit=config.params.blackout_limit,
            )
        except ValueError:
            # uncompilable draw (same-resource fault overlap, duplicate
            # phase starts): reject like any infeasible candidate
            continue
        if report.feasible:
            seen.add(key)
            return cand
    return None


def run_search(config: SearchConfig) -> SearchResult:
    """The deterministic adversarial search loop."""
    rng = np.random.default_rng(config.seed)
    result = SearchResult(config=config)
    seen: set = set()
    while len(result.evaluations) < config.budget:
        want = min(config.round_size, config.budget - len(result.evaluations))
        elites = result.best[: config.elite]
        batch: List[ScenarioSpec] = []
        for _ in range(want):
            cand = _next_candidate(rng, config, elites, seen)
            if cand is None:
                break
            batch.append(cand)
        if not batch:
            break  # sampling space exhausted under the budget
        result.evaluations.extend(
            evaluate_many(batch, params=config.params, workers=config.workers)
        )
    return result
