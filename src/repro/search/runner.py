"""Spec evaluation: one scenario scored for the adversarial search.

Every candidate is judged by *two* deterministic runs of the compiled
chaos scenario at the spec's own seed:

1. the controller under test — its mean deadline-violation rate is the
   candidate's **score** (what the search maximizes);
2. the clairvoyant oracle — run only when the analytic model
   (:mod:`repro.search.feasibility`) already calls the spec winnable,
   as the operational half of the feasibility constraint: the oracle
   must actually achieve low violations and a minimum success fraction
   at the same seed, otherwise the candidate is discarded as
   infeasible no matter how badly the controller did.

Evaluations travel through :func:`repro.experiments.parallel.map_jobs`
as plain dicts (specs and results both), so the fan-out works across
process pools and falls back in-process transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.search.feasibility import (
    DEFAULT_BLACKOUT_LIMIT,
    DEFAULT_FEASIBLE_FRAC,
    analyze_feasibility,
)
from repro.search.language import ScenarioSpec

#: QoS floats are rounded to this many decimals everywhere a result is
#: serialized, matching the trace-golden convention (washes out float
#: noise far below any simulated quantity while keeping replays exact)
QOS_DECIMALS = 9


@dataclass(frozen=True)
class EvalParams:
    """Thresholds that decide feasibility and failure."""

    #: analytic: serviceable fraction of demand required
    feasible_frac: float = DEFAULT_FEASIBLE_FRAC
    #: analytic: blackout-time fraction allowed
    blackout_limit: float = DEFAULT_BLACKOUT_LIMIT
    #: operational: max mean violation rate the oracle run may show
    oracle_violation_limit: float = 1.0
    #: operational: min success fraction the oracle run must reach
    oracle_success_floor: float = 0.40
    #: a feasible spec scoring at least this is a *finding*
    fail_threshold: float = 2.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "feasible_frac": self.feasible_frac,
            "blackout_limit": self.blackout_limit,
            "oracle_violation_limit": self.oracle_violation_limit,
            "oracle_success_floor": self.oracle_success_floor,
            "fail_threshold": self.fail_threshold,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "EvalParams":
        return cls(**data)


@dataclass
class EvalResult:
    """One scored candidate (picklable, JSON-ready)."""

    spec: ScenarioSpec
    score: float
    feasible: bool
    analytic: Dict[str, Any]
    controller_qos: Dict[str, Any]
    oracle_qos: Optional[Dict[str, Any]] = None
    detail: str = ""

    def failing(self, params: EvalParams) -> bool:
        return self.feasible and self.score >= params.fail_threshold

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.data,
            "score": self.score,
            "feasible": self.feasible,
            "analytic": self.analytic,
            "controller_qos": self.controller_qos,
            "oracle_qos": self.oracle_qos,
            "detail": self.detail,
        }


def qos_summary(qos) -> Dict[str, Any]:
    """The deterministic QoS scalars a golden records."""
    return {
        "total_frames": qos.total_frames,
        "successful": qos.successful,
        "timeouts": qos.timeouts,
        "rejected": qos.rejected,
        "mean_throughput": round(float(qos.mean_throughput), QOS_DECIMALS),
        "mean_violation_rate": round(float(qos.mean_violation_rate), QOS_DECIMALS),
        "success_fraction": round(float(qos.success_fraction), QOS_DECIMALS),
    }


def run_spec(spec: ScenarioSpec, controller: Optional[str] = None):
    """One deterministic chaos run of the spec (controller overridable)."""
    from repro.experiments.chaos import run_chaos
    from repro.search.compiler import compile_chaos

    if controller is not None:
        spec = spec.replace(controller=controller)
    return run_chaos(compile_chaos(spec))


def evaluate_spec(spec: ScenarioSpec, params: EvalParams = EvalParams()) -> EvalResult:
    """Score one candidate: controller run + feasibility verdict."""
    analytic = analyze_feasibility(
        spec,
        feasible_frac=params.feasible_frac,
        blackout_limit=params.blackout_limit,
    )
    controller_result = run_spec(spec)
    controller_qos = qos_summary(controller_result.run.qos)
    score = controller_qos["mean_violation_rate"]

    oracle_qos = None
    feasible = analytic.feasible
    detail = analytic.detail
    if analytic.feasible:
        oracle_result = run_spec(spec, controller="Oracle")
        oracle_qos = qos_summary(oracle_result.run.qos)
        if oracle_qos["mean_violation_rate"] > params.oracle_violation_limit:
            feasible = False
            detail = (
                f"oracle run refutes feasibility: violation rate "
                f"{oracle_qos['mean_violation_rate']:.2f}/s > "
                f"{params.oracle_violation_limit}"
            )
        elif oracle_qos["success_fraction"] < params.oracle_success_floor:
            feasible = False
            detail = (
                f"oracle run refutes feasibility: success "
                f"{oracle_qos['success_fraction']:.2f} < "
                f"{params.oracle_success_floor}"
            )
    return EvalResult(
        spec=spec,
        score=score,
        feasible=feasible,
        analytic=analytic.as_dict(),
        controller_qos=controller_qos,
        oracle_qos=oracle_qos,
        detail=detail,
    )


# ----------------------------------------------------------------------
# process-pool plumbing
# ----------------------------------------------------------------------
def _evaluate_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: dicts in, dicts out (picklable both ways)."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    result = evaluate_spec(spec, EvalParams.from_dict(payload["params"]))
    return result.as_dict()


def evaluate_many(
    specs: Sequence[ScenarioSpec],
    params: EvalParams = EvalParams(),
    workers: Optional[int] = None,
) -> List[EvalResult]:
    """Evaluate a batch, fanned out over the experiment process pool.

    Results come back in the order of ``specs`` (the pool preserves
    submission order), so search rounds are deterministic regardless
    of worker count.
    """
    from repro.experiments.parallel import map_jobs

    payloads = [
        {"spec": s.data, "params": params.as_dict()} for s in specs
    ]
    raw = map_jobs(_evaluate_payload, payloads, workers=workers)
    return [
        EvalResult(
            spec=ScenarioSpec.from_dict(r["scenario"]),
            score=r["score"],
            feasible=r["feasible"],
            analytic=r["analytic"],
            controller_qos=r["controller_qos"],
            oracle_qos=r["oracle_qos"],
            detail=r["detail"],
        )
        for r in raw
    ]
