"""Scenario compiler: lower the extended language onto the testbed.

Three lowering levels, each a pure function of the spec:

* :func:`network_rows` / :func:`load_rows` — lower a schedule field
  (explicit phases *or* a generator dict) to the flat
  ``(start, ...)`` rows the base :mod:`repro.io.config` format uses;
* :func:`compile_flat` — the fully-expanded base-format artifact
  (generators lowered, defaults untouched): what ``repro compile``
  emits and what :mod:`repro.experiments.parallel` workers consume;
* :func:`compile_chaos` — the runnable
  :class:`~repro.experiments.chaos.ChaosScenario` (base scenario +
  live injectors + optional resilience/supervision stacks).

Population specs expand with :func:`expand_population`: one flat
config per device, heterogeneity assigned round-robin so the expansion
is a deterministic function of the spec alone.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.experiments.chaos import ChaosScenario
from repro.experiments.scenario import Scenario
from repro.faults.base import FaultInjector, validate_plan
from repro.faults.device import CameraStall, CpuThrottle
from repro.faults.link import BandwidthCollapse, BurstLoss, LatencySpike
from repro.faults.process import ControllerKill, DeviceReboot, ServerKill
from repro.faults.server import GpuContention, ServerCrash, ServerSlowdown
from repro.faults.windows import FaultTimeline
from repro.search.language import ScenarioSpec, SpecError

#: fault kind -> injector class (parameters pass through by name)
INJECTOR_CLASSES = {
    "bandwidth_collapse": BandwidthCollapse,
    "burst_loss": BurstLoss,
    "latency_spike": LatencySpike,
    "server_crash": ServerCrash,
    "server_slowdown": ServerSlowdown,
    "gpu_contention": GpuContention,
    "cpu_throttle": CpuThrottle,
    "camera_stall": CameraStall,
    "controller_kill": ControllerKill,
    "server_kill": ServerKill,
    "device_reboot": DeviceReboot,
}

#: default sampling step for generator schedules (seconds)
DEFAULT_STEP = 5.0


def _spec_duration(spec: ScenarioSpec) -> float:
    """The run horizon a generator must cover."""
    if "duration" in spec.data:
        return float(spec.data["duration"])
    dev = spec.data.get("device", {})
    frames = int(dev.get("total_frames", 4000))
    rate = float(dev.get("frame_rate", 30.0))
    return frames / rate + 2.0


# ----------------------------------------------------------------------
# schedule lowering
# ----------------------------------------------------------------------
def network_rows(spec: ScenarioSpec) -> Optional[List[List[float]]]:
    """Lower the ``network`` field to ``[start, bandwidth, loss%]`` rows."""
    value = spec.data.get("network")
    if value is None:
        return None
    if isinstance(value, list):
        return [list(row) for row in value]
    kind = value["kind"]
    if kind == "phases":
        return [list(row) for row in value["rows"]]
    if kind == "diurnal":
        return _diurnal_network_rows(value, _spec_duration(spec))
    if kind == "mobility":
        return _mobility_rows(value, _spec_duration(spec))
    raise SpecError(f"unhandled network generator kind {kind!r}")  # pragma: no cover


def load_rows(spec: ScenarioSpec) -> Optional[List[List[float]]]:
    """Lower the ``load`` field to ``[start, rate]`` rows."""
    value = spec.data.get("load")
    if value is None:
        return None
    if isinstance(value, list):
        return [list(row) for row in value]
    kind = value["kind"]
    if kind == "phases":
        return [list(row) for row in value["rows"]]
    if kind == "diurnal":
        return _diurnal_load_rows(value, _spec_duration(spec))
    if kind == "flash_crowd":
        return _flash_crowd_rows(value, _spec_duration(spec))
    raise SpecError(f"unhandled load generator kind {kind!r}")  # pragma: no cover


def _diurnal_network_rows(gen: Dict[str, Any], horizon: float) -> List[List[float]]:
    """A traffic-cycle link: bandwidth dips (and loss peaks) at rush hour.

    ``bandwidth(t) = base - dip * (1 - cos(2*pi*t/period)) / 2`` sampled
    every ``step`` seconds — the trough sits mid-period.
    """
    period = float(gen.get("period", 120.0))
    base = float(gen.get("base_bandwidth", 10.0))
    dip = float(gen.get("dip", 8.0))
    loss_peak = float(gen.get("loss_peak", 0.0))
    step = float(gen.get("step", DEFAULT_STEP))
    duration = float(gen.get("duration", horizon))
    if period <= 0 or step <= 0:
        raise SpecError("diurnal network: period and step must be positive")
    if not 0.0 <= dip <= base:
        raise SpecError(f"diurnal network: need 0 <= dip <= base_bandwidth, got {dip}")
    rows: List[List[float]] = []
    t = 0.0
    while t < duration:
        depth = (1.0 - math.cos(2.0 * math.pi * t / period)) / 2.0
        rows.append([t, base - dip * depth, loss_peak * depth])
        t += step
    return rows


def _mobility_rows(gen: Dict[str, Any], horizon: float) -> List[List[float]]:
    """A patrol-loop trajectory lowered through the radio model."""
    from repro.workloads.mobility import mobility_schedule, patrol_loop

    lap_seconds = float(gen.get("lap_seconds", 60.0))
    if lap_seconds <= 0:
        raise SpecError(f"mobility network: lap_seconds must be positive, got {lap_seconds}")
    laps = int(gen.get("laps", max(1, math.ceil(horizon / lap_seconds))))
    try:
        trajectory = patrol_loop(
            radius_near=float(gen.get("radius_near", 5.0)),
            radius_far=float(gen.get("radius_far", 45.0)),
            lap_seconds=lap_seconds,
            laps=laps,
        )
    except ValueError as exc:
        raise SpecError(f"mobility network: {exc}") from exc
    schedule = mobility_schedule(
        trajectory,
        step=float(gen.get("step", 2.0)),
        duration=min(horizon, trajectory.duration),
    )
    return [
        [p.start, p.conditions.bandwidth, p.conditions.loss * 100.0]
        for p in schedule.phases
    ]


def _diurnal_load_rows(gen: Dict[str, Any], horizon: float) -> List[List[float]]:
    """Background request rate following a traffic cycle (peak mid-period)."""
    period = float(gen.get("period", 120.0))
    base = float(gen.get("base_rate", 0.0))
    peak = float(gen.get("peak_rate", 120.0))
    step = float(gen.get("step", DEFAULT_STEP))
    duration = float(gen.get("duration", horizon))
    if period <= 0 or step <= 0:
        raise SpecError("diurnal load: period and step must be positive")
    if peak < base:
        raise SpecError(f"diurnal load: peak_rate {peak} below base_rate {base}")
    rows: List[List[float]] = []
    t = 0.0
    while t < duration:
        depth = (1.0 - math.cos(2.0 * math.pi * t / period)) / 2.0
        rows.append([t, base + (peak - base) * depth])
        t += step
    return rows


def _flash_crowd_rows(gen: Dict[str, Any], horizon: float) -> List[List[float]]:
    """A flash crowd: ramp to peak at ``at``, hold, decay back to base."""
    base = float(gen.get("base_rate", 0.0))
    peak = float(gen.get("peak_rate", 150.0))
    at = float(gen.get("at", 10.0))
    ramp = float(gen.get("ramp", 5.0))
    hold = float(gen.get("hold", 10.0))
    decay = float(gen.get("decay", 10.0))
    step = float(gen.get("step", 2.0))
    if peak < base:
        raise SpecError(f"flash crowd: peak_rate {peak} below base_rate {base}")
    if min(at, ramp, hold, decay) < 0 or step <= 0:
        raise SpecError("flash crowd: times must be >= 0 and step positive")
    rows: List[List[float]] = [[0.0, base]]
    # ramp up in `step`-sized increments (piecewise-constant approximation)
    t = at
    while t < at + ramp:
        frac = (t - at) / ramp if ramp > 0 else 1.0
        rows.append([t, base + (peak - base) * frac])
        t += step
    rows.append([at + ramp, peak])
    t = at + ramp + hold
    while t < at + ramp + hold + decay:
        frac = (t - (at + ramp + hold)) / decay if decay > 0 else 1.0
        rows.append([t, peak - (peak - base) * frac])
        t += step
    rows.append([at + ramp + hold + decay, base])
    # drop duplicate start times introduced by zero-length segments
    seen: Dict[float, float] = {}
    for start, rate in rows:
        seen[start] = rate
    return [[s, seen[s]] for s in sorted(seen)]


# ----------------------------------------------------------------------
# flattening + population expansion
# ----------------------------------------------------------------------
def compile_flat(spec: ScenarioSpec) -> Dict[str, Any]:
    """The base-format dict with every generator lowered to phase rows.

    The result is accepted verbatim by
    :func:`repro.io.config.scenario_from_dict` (faults, population and
    stack switches are stripped — they live above the base format).
    """
    out: Dict[str, Any] = {}
    for key in ("controller", "seed", "duration", "device", "gpu",
                "batch_policy", "uplink_queue_bytes", "topology"):
        if key in spec.data:
            out[key] = spec.to_dict()[key]
    net = network_rows(spec)
    if net is not None:
        out["network"] = net
    load = load_rows(spec)
    if load is not None:
        out["load"] = load
    return out


def expand_population(spec: ScenarioSpec) -> List[Dict[str, Any]]:
    """One flat config per population member (round-robin heterogeneity).

    Without a ``population`` block this is just ``[compile_flat(spec)]``.
    """
    base = compile_flat(spec)
    pop = spec.data.get("population")
    if not pop:
        return [base]
    profiles = pop.get("profiles") or [base.get("device", {}).get("profile", "pi4b_r1_2")]
    models = pop.get("models") or [base.get("device", {}).get("model", "mobilenet_v3_small")]
    prefix = pop.get("name_prefix", "dev")
    out: List[Dict[str, Any]] = []
    for i in range(pop["size"]):
        device = dict(base.get("device", {}))
        device["name"] = f"{prefix}{i}"
        device["profile"] = profiles[i % len(profiles)]
        device["model"] = models[i % len(models)]
        out.append({**base, "device": device})
    return out


# ----------------------------------------------------------------------
# runnable lowering
# ----------------------------------------------------------------------
def build_injectors(spec: ScenarioSpec) -> List[FaultInjector]:
    """Fresh injector instances for the spec's fault timeline list.

    Injectors bind to one environment; build a new list per run.
    """
    out: List[FaultInjector] = []
    for i, entry in enumerate(spec.faults):
        cls = INJECTOR_CLASSES[entry["kind"]]
        params = {k: v for k, v in entry.items() if k not in ("kind", "windows")}
        timeline = FaultTimeline.from_rows([tuple(w) for w in entry["windows"]])
        try:
            out.append(cls(timeline, **params))
        except (TypeError, ValueError) as exc:
            raise SpecError(f"faults[{i}] ({entry['kind']}): {exc}") from exc
    # two injectors sharing a resource must not overlap in time — fail
    # at compile time, not mid-run (FaultOverlapError is a ValueError)
    validate_plan(out)
    return out


def compile_scenario(spec: ScenarioSpec) -> Scenario:
    """The benign base :class:`Scenario` (faults not attached)."""
    from repro.io.config import scenario_from_dict

    return scenario_from_dict(compile_flat(spec))


def compile_chaos(spec: ScenarioSpec) -> ChaosScenario:
    """The runnable chaos scenario: base + injectors + stacks."""
    from repro.resilience.config import ResilienceConfig
    from repro.supervision.supervisor import SupervisionConfig

    return ChaosScenario(
        base=compile_scenario(spec),
        injectors=build_injectors(spec),
        resilience=ResilienceConfig() if spec.data.get("resilience") else None,
        supervision=SupervisionConfig() if spec.data.get("supervision") else None,
    )
