"""Chaos regression goldens: minimized failing scenarios, replayable.

A scenario golden is one file under ``tests/goldens/scenarios/``
holding a minimized controller-breaking spec *and* the exact outcome
it produced: the controller's QoS, the oracle's QoS (the feasibility
witness), and the violation score.  Tier-1 replays every golden from
scratch — on the kernel fast path and under ``REPRO_SIM_SLOWPATH=1`` —
and compares **bytes**, exactly like the trace goldens: QoS floats are
rounded to :data:`~repro.search.runner.QOS_DECIMALS` decimals at
serialization time, and the document dumper is canonical
(sorted keys, fixed indent, newline-terminated).

Intentional-change workflow mirrors the trace goldens::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_scenario_goldens.py
    git diff tests/goldens/scenarios/   # review the semantic change
    git add tests/goldens/scenarios/
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from repro.search.language import SPEC_VERSION, ScenarioSpec
from repro.search.runner import EvalParams, EvalResult, evaluate_spec

#: bump on any change to the golden document structure
GOLDEN_VERSION = 1


def expected_block(result: EvalResult) -> Dict[str, Any]:
    """The replay-checked outcome block of one golden."""
    return {
        "score": result.score,
        "feasible": result.feasible,
        "analytic": result.analytic,
        "controller_qos": result.controller_qos,
        "oracle_qos": result.oracle_qos,
    }


def golden_document(name: str, result: EvalResult, params: EvalParams) -> Dict[str, Any]:
    """One golden file's JSON-ready content."""
    return {
        "version": GOLDEN_VERSION,
        "spec_version": SPEC_VERSION,
        "name": name,
        "params": params.as_dict(),
        "scenario": result.spec.data,
        "expected": expected_block(result),
    }


def dumps_golden(doc: Dict[str, Any]) -> str:
    """The byte-exact golden serialization."""
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def load_golden(path) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def replay_golden(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Re-run a golden's scenario and return the fresh expected block.

    Byte-determinism means ``replay_golden(doc) == doc["expected"]``
    for a healthy tree, on either simulation kernel.
    """
    spec = ScenarioSpec.from_dict(doc["scenario"])
    params = EvalParams.from_dict(doc["params"])
    return expected_block(evaluate_spec(spec, params))


def write_goldens(
    directory, results: List[EvalResult], params: EvalParams, prefix: str = "search"
) -> List[Path]:
    """Write one golden per finding; returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for i, result in enumerate(results):
        kinds = "-".join(sorted({f["kind"] for f in result.spec.faults})) or "schedule"
        name = f"{prefix}_{i:02d}_{kinds}"
        path = directory / f"{name}.json"
        path.write_text(dumps_golden(golden_document(name, result, params)))
        paths.append(path)
    return paths
