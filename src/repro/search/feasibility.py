"""Analytic oracle feasibility: is a scenario *winnable* at all?

The adversarial search maximizes deadline violations — and the
degenerate optimum is a scenario nobody can win (kill the link for the
whole run).  Those are excluded by a feasibility constraint built on
the clairvoyant oracle's capacity model (:mod:`repro.control.oracle`):
walk the compiled scenario's piecewise-constant intervals (schedule
phases x fault windows), compute the sustainable service rate on each
— offload capacity under the *faulted* link/GPU plus the device's
local rate — and require that

* the time-weighted serviceable fraction of demand stays above
  ``feasible_frac``, and
* total-blackout time (service below a standing-probe trickle while
  frames keep arriving) stays below ``blackout_limit``.

The estimate is deliberately conservative (the oracle's own safety
margins, worst-case contention factors, process-kill faults declared
unanalyzable): when :func:`analyze_feasibility` says *feasible*, an
actual oracle-controller run of the same scenario must achieve low
violations — ``tests/test_search_feasibility.py`` pins exactly that
implication, and the search double-checks it operationally
(:mod:`repro.search.runner`) before calling any scenario a finding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.control.oracle import (
    LINK_MARGIN,
    SERVER_MARGIN,
    expected_frame_wire_time,
    link_capacity_fps,
    mixed_server_capacity,
)
from repro.models.device_profiles import DEVICE_PROFILES
from repro.models.frames import FrameSpec
from repro.models.latency import GpuBatchModel
from repro.models.zoo import get_model
from repro.netem.link import LinkConditions
from repro.netem.schedule import NetworkSchedule
from repro.search.compiler import _spec_duration, build_injectors, load_rows, network_rows
from repro.search.language import ScenarioSpec
from repro.workloads.loadgen import LoadSchedule

#: serviceable fraction of demand below which a spec is unwinnable
DEFAULT_FEASIBLE_FRAC = 0.55
#: max fraction of demanded time the service rate may sit below the probe level
DEFAULT_BLACKOUT_LIMIT = 0.40
#: "blackout" means service below this fraction of the frame rate
PROBE_FRAC = 0.15

#: fault kinds the analytic model refuses to certify (conservative)
UNANALYZED_KINDS = frozenset({"controller_kill", "server_kill", "device_reboot"})


@dataclass(frozen=True)
class FeasibilityReport:
    """Verdict plus the quantities it was computed from."""

    feasible: bool
    #: time-weighted serviceable fraction of demand, in [0, 1]
    serviceable_frac: float
    #: fraction of demanded time spent in blackout
    blackout_frac: float
    frame_rate: float
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "feasible": self.feasible,
            "serviceable_frac": round(self.serviceable_frac, 9),
            "blackout_frac": round(self.blackout_frac, 9),
            "frame_rate": self.frame_rate,
            "detail": self.detail,
        }


def _active(entry: Dict[str, Any], t: float) -> bool:
    return any(s <= t < s + d for s, d in entry["windows"])


def analyze_feasibility(
    spec: ScenarioSpec,
    feasible_frac: float = DEFAULT_FEASIBLE_FRAC,
    blackout_limit: float = DEFAULT_BLACKOUT_LIMIT,
) -> FeasibilityReport:
    """Conservative analytic winnability check for one spec."""
    dev = spec.data.get("device", {})
    frame_rate = float(dev.get("frame_rate", 30.0))
    deadline = float(dev.get("deadline", 0.25))
    frame_bytes = FrameSpec(
        resolution=int(dev.get("resolution", 224)),
        jpeg_quality=float(dev.get("jpeg_quality", 85.0)),
    ).bytes_on_wire
    profile = DEVICE_PROFILES[dev.get("profile", "pi4b_r1_2")]
    model = get_model(dev.get("model", "mobilenet_v3_small"))
    from repro.models.device_profiles import local_rate

    base_local = local_rate(profile, model)

    gpu_cfg = spec.data.get("gpu", {})
    gpu = GpuBatchModel(
        base_latency=float(gpu_cfg.get("base_latency", GpuBatchModel.base_latency)),
        per_item=float(gpu_cfg.get("per_item", GpuBatchModel.per_item)),
        jitter_sigma=float(gpu_cfg.get("jitter_sigma", GpuBatchModel.jitter_sigma)),
    )

    unanalyzed = sorted(
        {f["kind"] for f in spec.faults if f["kind"] in UNANALYZED_KINDS}
    )
    if unanalyzed:
        return FeasibilityReport(
            feasible=False,
            serviceable_frac=0.0,
            blackout_frac=1.0,
            frame_rate=frame_rate,
            detail=f"process-kill faults not analyzed: {unanalyzed}",
        )

    net_rows = network_rows(spec)
    network = NetworkSchedule.from_rows([tuple(r) for r in net_rows]) if net_rows else None
    ld_rows = load_rows(spec)
    load = LoadSchedule.from_rows([tuple(r) for r in ld_rows]) if ld_rows else None

    duration = _spec_duration(spec)
    injectors = build_injectors(spec)  # reuse transform() for link faults
    by_kind = list(zip(spec.faults, injectors))

    edges = {0.0, duration}
    if network is not None:
        edges.update(t for t in network.change_times if t < duration)
    if load is not None:
        edges.update(t for t in load.change_times if t < duration)
    for entry in spec.faults:
        for start, dur in entry["windows"]:
            if start < duration:
                edges.add(start)
            if start + dur < duration:
                edges.add(start + dur)
    points = sorted(edges)

    served_time = 0.0
    demand_time = 0.0
    blackout_time = 0.0
    demanded_span = 0.0
    for a, b in zip(points, points[1:]):
        dt = b - a
        if dt <= 0:
            continue
        mid = (a + b) / 2.0

        # demand: the camera produces frames unless stalled
        stalled = any(
            e["kind"] == "camera_stall" and _active(e, mid) for e in spec.faults
        )
        demand = 0.0 if stalled else frame_rate
        if demand == 0.0:
            continue

        cond = network.at(mid) if network is not None else LinkConditions()
        gpu_factor = 1.0
        server_down = False
        local = base_local
        for entry, injector in by_kind:
            if not _active(entry, mid):
                continue
            kind = entry["kind"]
            if kind in ("bandwidth_collapse", "burst_loss", "latency_spike"):
                cond = injector.transform(cond)
            elif kind == "server_slowdown":
                gpu_factor *= entry.get("factor", 4.0)
            elif kind == "gpu_contention":
                # conservative: ~p98 of the lognormal contention draw
                mean = entry.get("mean_factor", 3.0)
                sigma = entry.get("sigma", 0.25)
                gpu_factor *= mean * math.exp(2.0 * sigma)
            elif kind == "server_crash":
                server_down = True
            elif kind == "cpu_throttle":
                local /= entry.get("factor", 2.0)

        offload = 0.0
        if not server_down:
            eff_gpu = GpuBatchModel(
                base_latency=gpu.base_latency * gpu_factor,
                per_item=gpu.per_item * gpu_factor,
                jitter_sigma=gpu.jitter_sigma,
            )
            bg_rate = load.rate_at(mid) if load is not None else 0.0
            wire = expected_frame_wire_time(cond, frame_bytes)
            min_server = eff_gpu.batch_latency(model, 1)
            transit = wire + cond.propagation_delay * 2 + min_server
            if transit <= deadline:
                link_cap = LINK_MARGIN * link_capacity_fps(cond, frame_bytes)
                server_cap = mixed_server_capacity(
                    eff_gpu, background_active=bg_rate > 0
                )
                headroom = SERVER_MARGIN * max(0.0, server_cap - bg_rate)
                offload = max(0.0, min(frame_rate, link_cap, headroom))

        serviceable = min(demand, offload + local)
        served_time += serviceable * dt
        demand_time += demand * dt
        demanded_span += dt
        if serviceable < PROBE_FRAC * frame_rate:
            blackout_time += dt

    if demand_time <= 0.0:
        return FeasibilityReport(
            feasible=False,
            serviceable_frac=0.0,
            blackout_frac=1.0,
            frame_rate=frame_rate,
            detail="camera stalled for the whole run",
        )

    serviceable_frac = served_time / demand_time
    blackout_frac = blackout_time / demanded_span
    feasible = serviceable_frac >= feasible_frac and blackout_frac <= blackout_limit
    detail = ""
    if not feasible:
        detail = (
            f"serviceable {serviceable_frac:.2f} < {feasible_frac}"
            if serviceable_frac < feasible_frac
            else f"blackout {blackout_frac:.2f} > {blackout_limit}"
        )
    return FeasibilityReport(
        feasible=feasible,
        serviceable_frac=serviceable_frac,
        blackout_frac=blackout_frac,
        frame_rate=frame_rate,
        detail=detail,
    )
