"""Control-stability metrics for Fig 2-style tuning comparisons.

§III-B tunes by eye: "increase K_P until the PV oscillated under
constant conditions ... increase K_D to reduce the oscillations".
These functions make those judgments mechanical so the gain sweep in
:mod:`repro.control.tuning` can reproduce the procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def oscillation_index(values: np.ndarray) -> float:
    """How much a settled signal keeps swinging.

    Defined as the mean absolute sample-to-sample change divided by the
    signal's range (0 for a constant or monotone-smooth signal, toward
    1 for a signal that reverses hard every sample).  Scale-free, so
    a 30 fps and a 60 fps controller are comparable.
    """
    v = np.asarray(values, dtype=float)
    if v.size < 3:
        return 0.0
    span = float(v.max() - v.min())
    if span <= 1e-12:
        return 0.0
    steps = np.abs(np.diff(v))
    return float(steps.mean() / span)


def direction_changes(values: np.ndarray, tolerance: float = 1e-9) -> int:
    """Number of sign reversals of the first difference."""
    v = np.asarray(values, dtype=float)
    if v.size < 3:
        return 0
    d = np.diff(v)
    signs = np.sign(np.where(np.abs(d) <= tolerance, 0.0, d))
    nz = signs[signs != 0]
    if nz.size < 2:
        return 0
    return int(np.count_nonzero(nz[1:] != nz[:-1]))


def overshoot(values: np.ndarray, final_value: float) -> float:
    """Peak excursion beyond the final value, as a fraction of it."""
    v = np.asarray(values, dtype=float)
    if v.size == 0 or abs(final_value) <= 1e-12:
        return 0.0
    peak = float(v.max())
    return max(0.0, (peak - final_value) / abs(final_value))


def settling_time(
    times: np.ndarray,
    values: np.ndarray,
    final_value: float,
    band: float = 0.10,
) -> float:
    """First time after which the signal stays within ``band`` of final.

    Returns ``inf`` if the signal never settles.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ValueError("times and values must have the same shape")
    if v.size == 0:
        return float("inf")
    tol = band * max(abs(final_value), 1e-9)
    outside = np.abs(v - final_value) > tol
    if not outside.any():
        return float(t[0])
    last_outside = int(np.nonzero(outside)[0][-1])
    if last_outside == v.size - 1:
        return float("inf")
    return float(t[last_outside + 1])


@dataclass(frozen=True)
class StabilityReport:
    """Rollup of the above over one controller trace."""

    oscillation: float
    direction_changes: int
    overshoot: float
    settling_time: float
    mean: float
    std: float


def stability_report(
    times: np.ndarray,
    values: np.ndarray,
    settle_fraction: float = 0.25,
    band: float = 0.10,
) -> StabilityReport:
    """Compute all stability metrics for one trace.

    ``final value`` is estimated as the mean of the trailing
    ``settle_fraction`` of the trace.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return StabilityReport(0.0, 0, 0.0, float("inf"), float("nan"), float("nan"))
    tail = v[int(v.size * (1.0 - settle_fraction)) :]
    final = float(tail.mean()) if tail.size else float(v[-1])
    return StabilityReport(
        oscillation=oscillation_index(v),
        direction_changes=direction_changes(v),
        overshoot=overshoot(v, final),
        settling_time=settling_time(t, v, final, band),
        mean=float(v.mean()),
        std=float(v.std()),
    )
