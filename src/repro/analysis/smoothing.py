"""Series smoothing (the "average trend" the paper plots over noisy P)."""

from __future__ import annotations

import numpy as np


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinking.

    Edges average over the available samples only, so the output has
    the same length as the input and no phantom zeros.
    """
    v = np.asarray(values, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or v.size == 0:
        return v.copy()
    kernel = np.ones(window)
    sums = np.convolve(v, kernel, mode="same")
    counts = np.convolve(np.ones_like(v), kernel, mode="same")
    return sums / counts


def ewma(values: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    v = np.asarray(values, dtype=float)
    out = np.empty_like(v)
    if v.size == 0:
        return out
    acc = v[0]
    for i, x in enumerate(v):
        acc = alpha * x + (1.0 - alpha) * acc
        out[i] = acc
    return out
