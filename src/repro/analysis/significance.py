"""Paired significance testing for controller comparisons.

Seed sweeps yield *paired* samples (both controllers see identical
seeds), so the right question is "how often would a sign-flip of the
paired differences produce a mean this large?" — the exact paired
permutation test.  No distributional assumptions, exact for the small
seed counts used here (2^n flips enumerated when feasible, sampled
otherwise).
"""

from __future__ import annotations

from itertools import product
from typing import Optional, Sequence

import numpy as np


def paired_permutation_test(
    a: Sequence[float],
    b: Sequence[float],
    n_resamples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Two-sided p-value for mean(a - b) != 0 under sign-flips.

    Enumerates all ``2^n`` sign patterns when ``n <= 20`` (exact test);
    otherwise Monte-Carlo with ``n_resamples`` draws.
    """
    diffs = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    n = diffs.size
    if n == 0:
        raise ValueError("need at least one pair")
    if np.allclose(diffs, 0.0):
        return 1.0
    observed = abs(diffs.mean())

    if n <= 20:
        count = 0
        total = 2**n
        for signs in product((1.0, -1.0), repeat=n):
            if abs((diffs * np.asarray(signs)).mean()) >= observed - 1e-15:
                count += 1
        return count / total

    rng = rng or np.random.default_rng(0)
    signs = rng.choice((1.0, -1.0), size=(n_resamples, n))
    stats = np.abs((signs * diffs).mean(axis=1))
    # +1 correction: the observed labelling counts as one permutation
    return float((np.sum(stats >= observed - 1e-15) + 1) / (n_resamples + 1))


def effect_size(a: Sequence[float], b: Sequence[float]) -> float:
    """Paired Cohen's d: mean difference over the difference's std."""
    diffs = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    if diffs.size < 2:
        raise ValueError("need at least two pairs for an effect size")
    sd = diffs.std(ddof=1)
    if sd == 0.0:
        return float("inf") if diffs.mean() != 0 else 0.0
    return float(diffs.mean() / sd)


def bootstrap_mean_diff_ci(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> tuple:
    """Percentile bootstrap CI for the paired mean difference ``a - b``.

    Resamples the paired differences with replacement; no normality
    assumption, honest at the small seed counts used here (the CI just
    gets wide).  Returns ``(lo, hi)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    diffs = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    n = diffs.size
    if n == 0:
        raise ValueError("need at least one pair")
    rng = rng or np.random.default_rng(0)
    idx = rng.integers(0, n, size=(n_resamples, n))
    means = diffs[idx].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, (tail, 1.0 - tail))
    return float(lo), float(hi)


def equivalent_within(
    a: Sequence[float],
    b: Sequence[float],
    margin: float,
    confidence: float = 0.95,
    n_resamples: int = 10_000,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Bootstrap equivalence test: is ``mean(a - b)`` within ``±margin``?

    Two one-sided tests by CI inclusion: ``a`` and ``b`` are declared
    equivalent when the whole bootstrap confidence interval of the
    paired mean difference lies inside ``[-margin, +margin]``.  Used to
    assert the hybrid kernel's fluid windows leave QoS statistically
    indistinguishable from exact DES — a *non-inferiority* claim, which
    a non-significant p-value alone cannot make.
    """
    if margin <= 0.0:
        raise ValueError(f"margin must be positive, got {margin!r}")
    lo, hi = bootstrap_mean_diff_ci(
        a, b, confidence=confidence, n_resamples=n_resamples, rng=rng
    )
    return -margin <= lo and hi <= margin
