"""Queueing-theory reference curves for substrate validation.

The link is, for fixed-size frames and no loss, an M/D/1 queue
(Poisson arrivals, deterministic serialization, one server); the GPU
under light load behaves like a batch-service queue.  These closed
forms give the suite an *external* ground truth: the simulator's
measured waits must match textbook predictions, not just our own
expectations (see ``tests/test_queueing_validation.py``).

All formulas return *waiting time in queue* (excluding service).
"""

from __future__ import annotations


def utilization(arrival_rate: float, service_time: float) -> float:
    """Offered load ``rho = lambda * s``."""
    if arrival_rate < 0 or service_time <= 0:
        raise ValueError("need arrival_rate >= 0 and service_time > 0")
    return arrival_rate * service_time


def md1_wait(arrival_rate: float, service_time: float) -> float:
    """Mean queue wait of M/D/1: ``W = rho * s / (2 (1 - rho))``.

    (Pollaczek–Khinchine with zero service variance.)
    """
    rho = utilization(arrival_rate, service_time)
    if rho >= 1.0:
        return float("inf")
    return rho * service_time / (2.0 * (1.0 - rho))


def mm1_wait(arrival_rate: float, mean_service_time: float) -> float:
    """Mean queue wait of M/M/1: ``W = rho * s / (1 - rho)``."""
    rho = utilization(arrival_rate, mean_service_time)
    if rho >= 1.0:
        return float("inf")
    return rho * mean_service_time / (1.0 - rho)


def mg1_wait(
    arrival_rate: float, mean_service_time: float, service_scv: float
) -> float:
    """Pollaczek–Khinchine: M/G/1 mean wait with squared CoV ``c^2``.

    ``W = rho * s * (1 + c^2) / (2 (1 - rho))``; reduces to M/D/1 at
    ``c^2 = 0`` and M/M/1 at ``c^2 = 1``.
    """
    if service_scv < 0:
        raise ValueError(f"squared CoV must be >= 0, got {service_scv}")
    rho = utilization(arrival_rate, mean_service_time)
    if rho >= 1.0:
        return float("inf")
    return rho * mean_service_time * (1.0 + service_scv) / (2.0 * (1.0 - rho))
