"""Post-processing: smoothing, stability, queueing theory, statistics."""

from repro.analysis.queueing import md1_wait, mg1_wait, mm1_wait, utilization
from repro.analysis.significance import effect_size, paired_permutation_test
from repro.analysis.smoothing import ewma, moving_average
from repro.analysis.stability import (
    StabilityReport,
    oscillation_index,
    overshoot,
    settling_time,
    stability_report,
)

__all__ = [
    "StabilityReport",
    "effect_size",
    "ewma",
    "md1_wait",
    "mg1_wait",
    "mm1_wait",
    "moving_average",
    "oscillation_index",
    "overshoot",
    "paired_permutation_test",
    "settling_time",
    "stability_report",
    "utilization",
]
