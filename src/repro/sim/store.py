"""Bounded FIFO stores (producer/consumer queues) for the DES kernel.

The server's request queue and the device's frame pipelines are
:class:`Store` instances.  Unlike SimPy's blocking ``put``, this store
also exposes :meth:`try_put` — non-blocking put with overflow rejection
— because the paper's batching scheme *rejects* frames beyond the queue
cap rather than back-pressuring the network (§IV-A).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from repro.sim.events import Event, EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class StoreFull(Exception):
    """Raised by blocking put on a full store in strict mode."""


class StorePut(Event):
    """Pending blocking put; fires when the item has been accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._settle()


class StoreGet(Event):
    """Pending get; fires with the next item."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_waiters.append(self)
        store._settle()


class Store:
    """A FIFO buffer of Python objects with optional capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Blocking put: fires once the item fits."""
        return StorePut(self, item)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put.  Returns False (rejecting) if full."""
        if self.is_full and not self._get_waiters:
            return False
        StorePut(self, item)
        return True

    def get(self) -> StoreGet:
        """Blocking get: fires with the oldest item."""
        return StoreGet(self)

    def try_get(self) -> Optional[Any]:
        """Non-blocking get.  Returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._settle()
        return item

    def drain(self, limit: Optional[int] = None) -> List[Any]:
        """Remove and return up to ``limit`` items (all if None).

        This is the primitive behind the paper's adaptive batching:
        "fill the next batch with the contents of this queue".
        """
        n = len(self.items) if limit is None else min(limit, len(self.items))
        out = [self.items.popleft() for _ in range(n)]
        if out:
            self._settle()
        return out

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Match waiting puts with free space and waiting gets with items."""
        progressed = True
        while progressed:
            progressed = False
            # admit puts while space allows
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.pop(0)
                self.items.append(put.item)
                put.succeed(None, priority=EventPriority.HIGH)
                progressed = True
            # serve gets while items exist
            while self._get_waiters and self.items:
                get = self._get_waiters.pop(0)
                get.succeed(self.items.popleft(), priority=EventPriority.HIGH)
                progressed = True
