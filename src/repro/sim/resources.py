"""Counted shared resources with FIFO / priority queueing.

Used by the server substrate (GPU executor slots) and the device
substrate (local CPU).  A :class:`Resource` hands out up to
``capacity`` concurrent holds; excess requests queue.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.sim.events import Event, EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Preempted(Exception):
    """Delivered (as interrupt cause) to a preempted resource holder."""

    def __init__(self, by: "Request", usage_since: float) -> None:
        super().__init__(by, usage_since)
        self.by = by
        self.usage_since = usage_since


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Supports the context-manager protocol so the common pattern is::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource", "priority", "time", "process")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.time = resource.env.now
        #: the process that issued the request (preemption target)
        self.process = resource.env.active_process
        resource._request(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request / release a granted one."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cancel()


class Resource:
    """A counted resource with FIFO granting."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self._waiting: List[Tuple[int, int, Request]] = []  # heap
        self._seq = 0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim one unit; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Give back a granted unit (or withdraw a queued request)."""
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            # Lazy removal from the wait heap.
            for i, (_p, _s, queued) in enumerate(self._waiting):
                if queued is request:
                    del self._waiting[i]
                    heapq.heapify(self._waiting)
                    break

    # ------------------------------------------------------------------
    def _request(self, request: Request) -> None:
        if len(self.users) < self.capacity and not self._waiting:
            self._grant(request)
        else:
            heapq.heappush(self._waiting, (request.priority, self._seq, request))
            self._seq += 1

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.succeed(None, priority=EventPriority.HIGH)

    def _grant_next(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            _prio, _seq, request = heapq.heappop(self._waiting)
            self._grant(request)


class PriorityResource(Resource):
    """A resource whose queue is ordered by request priority.

    Lower ``priority`` values are served first; ties are FIFO.  Used
    for the server's admission policy experiments (fair rejection gives
    tenants equal priority; weighted policies do not).
    """

    def request(self, priority: int = 0) -> Request:  # noqa: D102 - inherited
        return Request(self, priority)


class PreemptiveResource(PriorityResource):
    """A priority resource where urgent requests evict current holders.

    When a request arrives with strictly higher priority (lower value)
    than the lowest-priority current holder and no capacity is free,
    that holder's process is interrupted with a :class:`Preempted`
    cause and its claim released.  The preempted process decides
    whether to re-request, give up, or clean up — as with operating
    system preemption, policy lives with the victim.
    """

    def _request(self, request: Request) -> None:
        if len(self.users) >= self.capacity and not self._waiting:
            victim = self._preemption_victim(request)
            if victim is not None:
                self._preempt(victim, by=request)
        super()._request(request)

    def _preemption_victim(self, request: Request) -> Optional[Request]:
        """Lowest-priority holder strictly below the new request."""
        if not self.users:
            return None
        worst = max(self.users, key=lambda r: (r.priority, r.time))
        if worst.priority > request.priority:
            return worst
        return None

    def _preempt(self, victim: Request, by: Request) -> None:
        self.users.remove(victim)
        holder = getattr(victim, "process", None)
        if holder is not None and not holder.triggered:
            holder.interrupt(Preempted(by=by, usage_since=victim.time))
