"""Kernel introspection: event accounting for debugging simulations.

Attach a :class:`KernelStats` probe to an environment to count events
processed per priority and per event type, sample heap depth, and keep
a bounded ring of the most recent events — the first things one wants
when a simulation stalls or explodes.

The probe monkey-wraps ``Environment.step`` (the kernel stays free of
instrumentation branches on the hot path when no probe is attached).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Tuple

from repro.sim.core import Environment


@dataclass
class KernelStats:
    """Aggregate counters collected by :class:`KernelProbe`."""

    events_processed: int = 0
    by_type: Counter = field(default_factory=Counter)
    by_priority: Counter = field(default_factory=Counter)
    max_heap_depth: int = 0
    #: (time, event type name) of the most recent events
    recent: Deque[Tuple[float, str]] = field(default_factory=lambda: deque(maxlen=64))

    def summary(self) -> str:
        top = ", ".join(f"{name}:{n}" for name, n in self.by_type.most_common(5))
        return (
            f"{self.events_processed} events, max heap {self.max_heap_depth}, "
            f"top types: {top}"
        )


class KernelProbe:
    """Context manager instrumenting one environment's step loop."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.stats = KernelStats()
        self._original_step = None

    def __enter__(self) -> "KernelProbe":
        if self._original_step is not None:
            raise RuntimeError("probe already attached")
        self._original_step = self.env.step
        stats = self.stats
        env = self.env
        original = self._original_step

        def step() -> None:
            # Prune cancelled tombstones off the heap top so the sample
            # below describes the event step() will actually process.
            env.peek()
            depth = env.queue_size()
            if depth > stats.max_heap_depth:
                stats.max_heap_depth = depth
            if env._queue:
                when, prio, _seq, event = env._queue[0]
                stats.by_type[type(event).__name__] += 1
                stats.by_priority[prio] += 1
                stats.recent.append((when, type(event).__name__))
            original()
            stats.events_processed += 1

        self.env.step = step  # type: ignore[method-assign]
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._original_step is not None:
            self.env.step = self._original_step  # type: ignore[method-assign]
            self._original_step = None
