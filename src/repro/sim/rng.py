"""Deterministic per-component random streams.

Every stochastic component of the simulation (link loss, inference
latency jitter, background load arrivals, ...) draws from its own
named ``numpy.random.Generator``.  Streams are derived from a single
root seed with ``SeedSequence`` so that

* a full experiment is reproducible bit-for-bit from one integer, and
* adding a new random consumer does not perturb existing streams
  (streams are keyed by *name*, not by creation order).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of named, independent random generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable name -> integer key, independent of call order.
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list:
        return sorted(self._streams)

    def reset(self) -> None:
        """Drop all streams; next use re-creates them from the seed."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"
