"""Bucketed calendar-queue prototype for the event schedule.

``REPRO_SIM_CALENDAR=1`` makes :class:`~repro.sim.core.Environment`
construct a :class:`CalendarEnvironment` instead (see
``Environment.__new__``), swapping the single binary heap for a
two-level structure in the calendar-queue family (Brown 1988): events
hash into fixed-width time buckets (a dict keyed by
``floor(t / width)``), and a small heap of *bucket indices* finds the
front bucket without scanning empty ones.  Each bucket is its own tiny
heap ordered by the exact same ``(time, priority, seq)`` key the binary
heap uses, and equal timestamps always land in the same bucket, so
event ordering — and therefore every simulation result — is
byte-identical to the default kernel.

The bet behind the structure: most pushes land in an existing bucket,
where the per-operation heap is tens of entries instead of thousands,
so ``heappush``/``heappop`` touch a shorter path.  The bench
(``benchmarks/kernel_baseline.py``, compared in docs/performance.md)
decides whether that beats the C-implemented single ``heapq`` — the
prototype stays opt-in either way, and the default kernel keeps
whichever structure wins.

Cancellation follows the same lazy-deletion contract as the core
kernel: dead entries are skipped at the front and compaction rebuilds
the calendar when they dominate.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.sim.core import (
    EmptySchedule,
    Environment,
    _COMPACT_DEAD_MIN,
)
from repro.sim.events import Event, EventPriority

_INF = float("inf")


class CalendarEnvironment(Environment):
    """Environment whose schedule is a bucketed calendar queue."""

    #: bucket width in simulation seconds; sized around the testbed's
    #: densest event spacing (packet serialization, a few ms) so a
    #: bucket holds a handful of events, not hundreds
    BUCKET_WIDTH = 0.01

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: bucket index -> per-bucket min-heap of (t, prio, seq, event)
        self._buckets: dict = {}
        #: min-heap of active bucket indices (invariant: an index is in
        #: this heap iff it is a key of ``_buckets``)
        self._bucket_heap: List[int] = []
        #: total entries across buckets, dead included
        self._count = 0
        # the base class's binary heap is never used on this path
        self._queue = []

    # ------------------------------------------------------------------
    def queue_size(self) -> int:
        return self._count - self._dead

    def schedule(
        self,
        event: Event,
        priority: int = EventPriority.NORMAL,
        delay: float = 0.0,
    ) -> None:
        if event._scheduled:
            raise RuntimeError(f"{event!r} scheduled twice")
        event._scheduled = True
        t = self._now + delay
        idx = int(t / self.BUCKET_WIDTH)
        bucket = self._buckets.get(idx)
        if bucket is None:
            bucket = []
            self._buckets[idx] = bucket
            heapq.heappush(self._bucket_heap, idx)
        heapq.heappush(bucket, (t, int(priority), self._seq, event))
        self._seq += 1
        self._count += 1
        stats = self._stats
        if stats is not None:
            stats.events_scheduled += 1
            depth = self._count - self._dead
            if depth > stats.peak_heap_size:
                stats.peak_heap_size = depth
            active = self._active_process
            if active is not None:
                stats.events_by_process[active.name] += 1

    # ------------------------------------------------------------------
    def _front_bucket(self) -> Optional[List[Tuple[float, int, int, Event]]]:
        """The non-empty bucket holding the global minimum, or None."""
        heap = self._bucket_heap
        buckets = self._buckets
        while heap:
            idx = heap[0]
            bucket = buckets[idx]
            if bucket:
                return bucket
            heapq.heappop(heap)
            del buckets[idx]
        return None

    def _note_cancel(self) -> None:
        self._dead += 1
        if self._stats is not None:
            self._stats.events_cancelled += 1
        if self._dead > _COMPACT_DEAD_MIN and self._dead * 2 > self._count:
            self._compact()

    def _compact(self) -> None:
        entries = [
            entry
            for bucket in self._buckets.values()
            for entry in bucket
            if not entry[3]._cancelled
        ]
        self._buckets = {}
        self._bucket_heap = []
        self._count = len(entries)
        self._dead = 0
        width = self.BUCKET_WIDTH
        for entry in entries:
            idx = int(entry[0] / width)
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
            else:
                bucket.append(entry)
        for idx, bucket in self._buckets.items():
            heapq.heapify(bucket)
            heapq.heappush(self._bucket_heap, idx)
        if self._stats is not None:
            self._stats.heap_compactions += 1

    def peek(self) -> float:
        while True:
            bucket = self._front_bucket()
            if bucket is None:
                return _INF
            if not bucket[0][3]._cancelled:
                return bucket[0][0]
            heapq.heappop(bucket)
            self._count -= 1
            self._dead -= 1
            if self._stats is not None:
                self._stats.events_skipped += 1

    def step(self) -> None:
        while True:
            bucket = self._front_bucket()
            if bucket is None:
                raise EmptySchedule()
            when, _prio, _seq, event = heapq.heappop(bucket)
            self._count -= 1
            if not event._cancelled:
                break
            self._dead -= 1
            if self._stats is not None:
                self._stats.events_skipped += 1
        if when < self._now:  # pragma: no cover - bucket order guarantees
            raise RuntimeError("time went backwards")
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if self._stats is not None:
            self._stats.events_processed += 1

        if not event._ok and not event._defused:
            exc = event.value
            raise exc
