"""Generator-coroutine processes for the DES kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, EventPriority, Interrupt, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class _SleepEvent(Event):
    """A process's reusable resume timer (see :meth:`Process.sleep`).

    Single-waiter by construction: its callback list is the owning
    process's pre-wired ``[resume]`` list, shared across every reuse, so
    nothing else may register on it.
    """

    __slots__ = ()

    def add_callback(self, callback) -> None:
        raise RuntimeError(
            "sleep events are single-waiter: yield them immediately from "
            "the sleeping process; use env.timeout() for timers that are "
            "shared or composed with | / &"
        )


class Process(Event):
    """A running activity, driven by a Python generator.

    The generator yields :class:`Event` objects; the process suspends
    until each yielded event fires, then resumes with the event's value
    (or has the event's exception thrown into it on failure).  A
    process is itself an event: it fires with the generator's return
    value when the generator finishes, so processes can wait on each
    other (fork/join).
    """

    __slots__ = ("_generator", "_target", "name", "_resume_cb", "_sleep_ev", "_sleep_cbs")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None if ready)
        self._target: Optional[Event] = None
        # Bound-method access allocates a fresh object each time (so two
        # reads of self._resume are never `is`-identical); cache one
        # canonical callback for registration *and* identity removal.
        self._resume_cb = self._resume
        #: reusable sleep timer + its pre-wired callback list, created
        #: lazily on the first sleep() so short-lived processes that
        #: never sleep pay nothing for them
        self._sleep_ev: Optional[_SleepEvent] = None
        self._sleep_cbs: Optional[list] = None
        # Kick-start: resume at the current time, before normal events
        # at this instant settle, so a freshly spawned process can react
        # to the same-instant world state.  Built field-by-field (not
        # via Event.__init__) so spawning stays one allocation + one
        # heappush: the event is born already-succeeded with its one
        # callback in place.
        init = Event.__new__(Event)
        init.env = env
        init.callbacks = [self._resume_cb]
        init._value = None
        init._ok = True
        init._scheduled = False
        init._defused = False
        init._cancelled = False
        env.schedule(init, priority=EventPriority.URGENT)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is resumed immediately (URGENT priority) at the
        current simulation time.  Interrupting a finished process is an
        error; interrupting a process twice before it handles the first
        interrupt queues both.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume_cb)
        self.env.schedule(interrupt_ev, priority=EventPriority.URGENT)

    def kill(self) -> None:
        """Terminate the process *without* throwing into the generator.

        Crash semantics for fault injection: the process simply stops
        existing, as if its host died.  Unlike :meth:`interrupt`, the
        generator gets no chance to run cleanup or handlers — it is
        closed where it stands.  The event the process was waiting on
        is detached first: a pending fast-path sleep timer is
        ``cancel()``-ed (so :class:`~repro.sim.core.EnvStats` cancel
        counts stay accurate and the tombstone can never resume a dead
        process), any other target merely loses this process's resume
        callback (it may be shared with other waiters).

        The process event itself fires with value ``None`` so joiners
        observe the death.  Killing a finished process or yourself is
        an error, matching :meth:`interrupt`.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be killed")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot kill itself")
        target = self._target
        if target is not None:
            if type(target) is _SleepEvent:
                # Shared pre-wired callback list — never mutate it; the
                # whole timer dies (lazy heap deletion, counted).
                target.cancel()
            else:
                target.remove_callback(self._resume_cb)
            self._target = None
        self._generator.close()
        self.succeed(None, priority=EventPriority.NORMAL)

    def sleep(self, delay: float) -> Event:
        """Suspend this process for ``delay`` seconds, allocation-free.

        Reuses one pre-wired :class:`_SleepEvent` whose callback list is
        permanently ``[self._resume]``: each tick of a periodic loop is
        a single ``heappush``, with no Event construction, no callback
        list, and no ``add_callback``.  A fresh timer is allocated only
        when the previous one was cancelled mid-flight (its tombstone
        must stay dead in the heap) — in steady state that never
        happens.  Must be yielded immediately by this process.
        """
        env = self.env
        if env._slowpath:
            return Timeout(env, delay)
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if self._sleep_cbs is None:
            self._sleep_cbs = [self._resume_cb]
        ev = self._sleep_ev
        if ev is not None and ev.callbacks is None and not ev._cancelled:
            # Previous sleep completed normally: rewire and rearm.
            ev.callbacks = self._sleep_cbs
            ev._scheduled = False
        else:
            # First sleep, or the old timer is a cancelled tombstone
            # still sitting in the heap — it must keep its dead state,
            # so it is abandoned and a fresh timer takes its place.
            ev = _SleepEvent.__new__(_SleepEvent)
            Event.__init__(ev, env)
            ev._ok = True
            ev._value = None
            ev.callbacks = self._sleep_cbs
            self._sleep_ev = ev
        env.schedule(ev, priority=EventPriority.NORMAL, delay=delay)
        return ev

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self.triggered:
            # The process died (kill()) between this event's scheduling
            # and its firing — e.g. the URGENT kick-start of a process
            # killed in its spawn instant.  Swallow the resume; a failed
            # event is defused so the stray outcome cannot crash the run.
            if not event._ok:
                event._defused = True
            return
        env = self.env
        env._active_process = self

        # Detach from the event we were waiting on (it may differ from
        # `event` if this resumption is an interrupt).
        target = self._target
        if target is not None and target is not event:
            if type(target) is _SleepEvent:
                # The sleep timer's callback list is the shared pre-wired
                # one — never mutate it; kill the whole timer instead.
                target.cancel()
            else:
                target.remove_callback(self._resume_cb)
        self._target = None

        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                # Mark delivered so the kernel doesn't treat the failure
                # as unhandled; the generator may still re-raise.
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value, priority=EventPriority.NORMAL)
            return
        except Interrupt as exc:
            # The process let an interrupt escape: treat as failure.
            env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return

        env._active_process = None

        if type(result) is _SleepEvent:
            # Fast path: the callback is pre-wired, no add_callback.
            if result is not self._sleep_ev or result.callbacks is not self._sleep_cbs:
                raise RuntimeError(
                    f"process {self.name!r} yielded a sleep event it does "
                    "not own (or yielded it late)"
                )
            self._target = result
            return
        if not isinstance(result, Event):
            raise RuntimeError(
                f"process {self.name!r} yielded a non-event: {result!r}"
            )
        if result.callbacks is None:
            # Already processed: resume immediately at this instant.
            ev = Event(env)
            if result._ok:
                ev._ok, ev._value = True, result._value
            else:
                result._defused = True
                ev._ok, ev._value = False, result._value
                ev._defused = True
            ev.callbacks.append(self._resume_cb)
            env.schedule(ev, priority=EventPriority.URGENT)
        else:
            result.add_callback(self._resume_cb)
            self._target = result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if not self.triggered else "done"
        return f"<Process {self.name!r} {state}>"
