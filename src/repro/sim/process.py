"""Generator-coroutine processes for the DES kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, EventPriority, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Process(Event):
    """A running activity, driven by a Python generator.

    The generator yields :class:`Event` objects; the process suspends
    until each yielded event fires, then resumes with the event's value
    (or has the event's exception thrown into it on failure).  A
    process is itself an event: it fires with the generator's return
    value when the generator finishes, so processes can wait on each
    other (fork/join).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None if ready)
        self._target: Optional[Event] = None
        # Kick-start: resume at the current time, before normal events
        # at this instant settle, so a freshly spawned process can react
        # to the same-instant world state.
        init = Event(env)
        init._ok = True
        init._value = None
        init.add_callback(self._resume)
        env.schedule(init, priority=EventPriority.URGENT)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is resumed immediately (URGENT priority) at the
        current simulation time.  Interrupting a finished process is an
        error; interrupting a process twice before it handles the first
        interrupt queues both.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.add_callback(self._resume)
        self.env.schedule(interrupt_ev, priority=EventPriority.URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self

        # Detach from the event we were waiting on (it may differ from
        # `event` if this resumption is an interrupt).
        if self._target is not None and self._target is not event:
            self._target.remove_callback(self._resume)
        self._target = None

        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                # Mark delivered so the kernel doesn't treat the failure
                # as unhandled; the generator may still re-raise.
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value, priority=EventPriority.NORMAL)
            return
        except Interrupt as exc:
            # The process let an interrupt escape: treat as failure.
            env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return

        env._active_process = None

        if not isinstance(result, Event):
            raise RuntimeError(
                f"process {self.name!r} yielded a non-event: {result!r}"
            )
        if result.callbacks is None:
            # Already processed: resume immediately at this instant.
            ev = Event(env)
            if result._ok:
                ev._ok, ev._value = True, result._value
            else:
                result._defused = True
                ev._ok, ev._value = False, result._value
                ev._defused = True
            ev.add_callback(self._resume)
            env.schedule(ev, priority=EventPriority.URGENT)
        else:
            result.add_callback(self._resume)
            self._target = result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if not self.triggered else "done"
        return f"<Process {self.name!r} {state}>"
