"""Deterministic discrete-event simulation (DES) kernel.

This package is the concurrency substrate for the FrameFeedback
reproduction.  The paper's system is a real-time distributed system
(threads, sockets, GPUs); here every concurrent activity is a
:class:`~repro.sim.process.Process` — a Python generator that yields
:class:`~repro.sim.events.Event` objects — executed in virtual time by
an :class:`~repro.sim.core.Environment`.

The kernel is intentionally SimPy-shaped (environments, processes,
timeouts, shared resources, stores) but written from scratch so the
repository is self-contained.  Determinism guarantees:

* events scheduled for the same timestamp fire in (priority, FIFO)
  order, so a run is a pure function of its seed;
* all randomness flows through :class:`~repro.sim.rng.RngRegistry`,
  which derives one independent ``numpy`` generator per named
  component from a single root seed.

Typical usage::

    from repro.sim import Environment

    def ticker(env, period):
        while True:
            yield env.timeout(period)
            print("tick at", env.now)

    env = Environment()
    env.process(ticker(env, 1.0))
    env.run(until=10.0)
"""

from repro.sim.core import Environment, EnvStats, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventPriority,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.resources import (
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Resource,
)
from repro.sim.rng import RngRegistry
from repro.sim.store import Store, StoreFull

__all__ = [
    "AllOf",
    "AnyOf",
    "EnvStats",
    "Environment",
    "Event",
    "EventPriority",
    "Interrupt",
    "Preempted",
    "PreemptiveResource",
    "PriorityResource",
    "Process",
    "Resource",
    "RngRegistry",
    "StopSimulation",
    "Store",
    "StoreFull",
    "Timeout",
]
