"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence in virtual time.  Processes
(generators) yield events to suspend until the event fires; arbitrary
callbacks may also be attached.  Events carry a *value* (on success) or
an *exception* (on failure), mirroring the future/promise pattern.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.core import Environment


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same timestamp.

    Lower values fire first.  ``URGENT`` is reserved for kernel
    bookkeeping (e.g. process resumption after an interrupt), ``HIGH``
    for resource handoffs, ``NORMAL`` for everything else.
    """

    URGENT = 0
    HIGH = 1
    NORMAL = 2
    LOW = 3


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    The interrupting party supplies ``cause``, available via
    :attr:`cause` inside the interrupted process's ``except`` block.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt(cause={self.cause!r})"


class _Pending:
    """Sentinel for "event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<pending>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* → ``succeed(value)`` or ``fail(exc)`` →
    *triggered* (scheduled on the event heap) → *processed* (callbacks
    ran).  Events may only be triggered once; re-triggering raises
    ``RuntimeError``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: callables invoked with this event when it is processed
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        # A failed event whose exception was delivered to at least one
        # waiter is "defused"; undefused failures crash the run so
        # errors are never silently dropped.
        self._defused = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the heap."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._value is PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    @property
    def defused(self) -> bool:
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so it won't crash the run."""
        self._defused = True

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = EventPriority.NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = EventPriority.NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback form)."""
        if event.ok:
            self.succeed(event.value)
        else:
            event.defuse()
            self.fail(event.value)

    # ------------------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    # ------------------------------------------------------------------
    # composition sugar: (a & b) waits for both, (a | b) for either
    # ------------------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        if not isinstance(other, Event):
            return NotImplemented
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        if not isinstance(other, Event):
            return NotImplemented
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "pending"
            if self._value is PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, priority=EventPriority.NORMAL, delay=self.delay)


class Condition(Event):
    """Composite event over several sub-events.

    Fires when ``evaluate(events, n_done)`` returns True.  The value is
    an ordered dict-like mapping of the *triggered* sub-events to their
    values (insertion order = construction order).
    """

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise ValueError("events belong to different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _evaluate(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        # Note: ``processed``, not ``triggered`` — Timeouts carry their
        # value from construction, so ``triggered`` is true before they
        # actually fire.
        return {ev: ev.value for ev in self._events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._count += 1
        if self._evaluate(self._count, len(self._events)):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def _evaluate(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def _evaluate(self, count: int, total: int) -> bool:
        return count >= 1
