"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence in virtual time.  Processes
(generators) yield events to suspend until the event fires; arbitrary
callbacks may also be attached.  Events carry a *value* (on success) or
an *exception* (on failure), mirroring the future/promise pattern.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.core import Environment


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same timestamp.

    Lower values fire first.  ``URGENT`` is reserved for kernel
    bookkeeping (e.g. process resumption after an interrupt), ``HIGH``
    for resource handoffs, ``NORMAL`` for everything else.
    """

    URGENT = 0
    HIGH = 1
    NORMAL = 2
    LOW = 3


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    The interrupting party supplies ``cause``, available via
    :attr:`cause` inside the interrupted process's ``except`` block.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt(cause={self.cause!r})"


class _Pending:
    """Sentinel for "event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<pending>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* → ``succeed(value)`` or ``fail(exc)`` →
    *triggered* (scheduled on the event heap) → *processed* (callbacks
    ran).  Events may only be triggered once; re-triggering raises
    ``RuntimeError``.

    A *scheduled* event may be :meth:`cancel`\\ led instead: it stays in
    the heap as a dead entry that the kernel skips (and eventually
    compacts away) without running callbacks — the cheap way to retire
    the deadline watchdogs and hedge timers that usually never fire.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_scheduled",
        "_defused",
        "_cancelled",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: callables invoked with this event when it is processed
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._cancelled = False
        # A failed event whose exception was delivered to at least one
        # waiter is "defused"; undefused failures crash the run so
        # errors are never silently dropped.
        self._defused = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the heap."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._value is PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    @property
    def defused(self) -> bool:
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so it won't crash the run."""
        self._defused = True

    @property
    def cancelled(self) -> bool:
        """True once the event has been withdrawn from the schedule."""
        return self._cancelled

    def cancel(self) -> bool:
        """Withdraw a scheduled-but-unprocessed event from the schedule.

        The heap entry is *not* searched for (that would be O(n)); the
        event is marked dead and the kernel skips it when it pops —
        lazy deletion, with periodic compaction when dead entries pile
        up.  Callbacks never run for a cancelled event.

        Returns True when the event was cancelled by this call; False
        when it had already been processed (the race a deadline
        watchdog loses) or already cancelled.  Cancelling an event that
        was never scheduled is an error: there is nothing to withdraw.
        """
        if self.callbacks is None or self._cancelled:
            return False
        if not self._scheduled:
            raise RuntimeError(f"{self!r} is not scheduled; nothing to cancel")
        self._cancelled = True
        self.env._note_cancel()
        return True

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = EventPriority.NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = EventPriority.NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback form)."""
        if event.ok:
            self.succeed(event.value)
        else:
            event.defuse()
            self.fail(event.value)

    # ------------------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach ``callback`` (matched by identity) if still attached.

        Identity matching is deliberate: equality on bound methods
        compares ``__self__``/``__func__`` pair-wise, which made the old
        ``in``-then-``remove`` implementation two O(n) equality scans.
        Callers that detach (the run-loop teardown, process re-targeting
        on interrupt) all hold the exact callable they attached.
        """
        callbacks = self.callbacks
        if callbacks is None:
            return
        for i, cb in enumerate(callbacks):
            if cb is callback:
                del callbacks[i]
                return

    # ------------------------------------------------------------------
    # composition sugar: (a & b) waits for both, (a | b) for either
    # ------------------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        if not isinstance(other, Event):
            return NotImplemented
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        if not isinstance(other, Event):
            return NotImplemented
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "pending"
            if self._value is PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at t={self.env.now:g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, priority=EventPriority.NORMAL, delay=self.delay)


class Condition(Event):
    """Composite event over several sub-events.

    Fires when ``evaluate(events, n_done)`` returns True.  The value is
    an ordered dict-like mapping of the *processed* sub-events to their
    values (insertion order = construction order).

    Fired sub-events are collected incrementally in :meth:`_check`, so
    triggering an ``AnyOf`` over a large event set is O(1) per firing
    instead of a full rescan of every sub-event; the construction-order
    contract of the value dict is restored once, at collect time.
    """

    __slots__ = ("_events", "_count", "_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        #: ok sub-events seen by :meth:`_check`, in processing order
        self._fired: List[Event] = []
        for ev in self._events:
            if ev.env is not env:
                raise ValueError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        # Sub-events already processed at construction are pre-collected
        # in construction order: the condition may trigger on the first
        # of them, and its value must still include every one (matching
        # the old collect-time rescan semantics).
        for ev in self._events:
            if ev.callbacks is None and ev._ok:
                self._fired.append(ev)
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev, _record=False)
            else:
                ev.add_callback(self._check)

    def _evaluate(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        fired = self._fired
        if len(fired) > 1:
            # restore construction order (fired holds processing order)
            fired_set = set(fired)
            return {ev: ev._value for ev in self._events if ev in fired_set}
        return {ev: ev._value for ev in fired}

    def _check(self, event: Event, _record: bool = True) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        if _record:
            self._fired.append(event)
        self._count += 1
        if self._evaluate(self._count, len(self._events)):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def _evaluate(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def _evaluate(self, count: int, total: int) -> bool:
        return count >= 1
