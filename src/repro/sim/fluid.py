"""The hybrid-kernel regime manager: steady windows vs exact DES.

The exact kernel simulates every frame as a handful of heap events
(camera tick, link serialization per packet, delivery, server batch,
response, watchdog).  At 30 fps that cost is the wall the PR-3 fast
path cannot move.  The fluid regime removes it for the *boring* parts
of a run: when arrival and service rates are stable and nothing is
scheduled to change, per-frame outcomes are predicted analytically
through :mod:`repro.analysis.queueing` instead of being event-stepped
(the rate-based abstraction of Chakrabarti et al., arXiv:2010.13737,
and Qiu et al., arXiv:2208.00485).

The :class:`FluidRegime` decides *when* that is sound.  It knows every
upcoming structural edge — controller measure ticks, network/load
schedule changes, pinned fault-timeline boundaries, the run horizon —
and a set of steadiness predicates contributed by the components
(breaker state, fleet health, active fault windows).  A window is
opened only when every predicate holds and no edge falls inside it;
otherwise the run stays on exact per-frame DES and the refusal reason
is counted.  The fluid *model* itself (what happens to frames inside a
window) lives with the device in :mod:`repro.device.fluid`; this
module is pure regime control, so the kernel layer never imports the
testbed.

Determinism contract: a hybrid run is deterministic (same seed, same
windows, same draws from the dedicated ``"fluid"`` rng stream), traced
runs pin to exact DES (byte-identical to exact-kernel goldens), and
fluid regions are validated *statistically* against exact runs — see
docs/performance.md, "Hybrid kernel".
"""

from __future__ import annotations

from bisect import insort
from collections import Counter
from typing import Callable, List, Optional

from repro.sim.core import Environment

#: steadiness predicate: ``fn(now)`` returns None when fluid advance is
#: sound, or a short reason string to force exact DES
SteadyCheck = Callable[[float], Optional[str]]

#: edge provider: ``fn(now)`` returns the next structural edge strictly
#: after ``now`` (``inf`` when none)
EdgeProvider = Callable[[float], float]

_INF = float("inf")


class FluidRegime:
    """Decides, instant by instant, whether analytic advance is sound.

    Attaching the regime to an environment (``env.regime = self``,
    done by ``__init__``) is the whole opt-in: components that know how
    to fluid-advance query it, everything else keeps stepping exactly.
    """

    def __init__(
        self,
        env: Environment,
        min_window: float = 0.25,
        max_window: float = 10.0,
    ) -> None:
        if min_window <= 0 or max_window < min_window:
            raise ValueError(
                f"need 0 < min_window <= max_window, got "
                f"{min_window!r}/{max_window!r}"
            )
        self.env = env
        #: windows shorter than this are not worth leaving exact DES for
        #: (set it above the run length to force pure exact DES — the
        #: degenerate hybrid the boundary tests diff byte-for-byte)
        self.min_window = float(min_window)
        #: cap on one analytic leap, so rate summaries cannot go stale
        self.max_window = float(max_window)
        self._steady_checks: List[SteadyCheck] = []
        self._edge_providers: List[EdgeProvider] = []
        #: sorted absolute times of known transients (schedule changes,
        #: fault-timeline boundaries) a window must never straddle
        self._pinned: List[float] = []
        # regime counters (mirrored into EnvStats when enabled)
        self.windows_entered = 0
        self.frames_fluid = 0
        self.fluid_seconds = 0.0
        self.forced_exact = Counter()
        env.regime = self

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_steady_check(self, fn: SteadyCheck) -> None:
        """Register a predicate that can veto fluid advance."""
        self._steady_checks.append(fn)

    def add_edge_provider(self, fn: EdgeProvider) -> None:
        """Register a source of upcoming structural edges."""
        self._edge_providers.append(fn)

    def pin_edges(self, times) -> None:
        """Pin absolute transient times no window may straddle.

        Injector installs and schedule wiring call this with every
        known boundary; duplicates are harmless.
        """
        for t in times:
            insort(self._pinned, float(t))

    def next_pinned(self, now: float) -> float:
        """First pinned edge strictly after ``now`` (inf if none)."""
        for t in self._pinned:
            if t > now + 1e-12:
                return t
        return _INF

    # ------------------------------------------------------------------
    # the regime decision
    # ------------------------------------------------------------------
    def note_forced(self, reason: str) -> None:
        """Count one refusal to go fluid (for EnvStats / reports)."""
        self.forced_exact[reason] += 1
        stats = self.env.stats
        if stats is not None:
            stats.fluid_forced_exact += 1

    def open_window(self, now: float, hard_edge: float = _INF) -> Optional[float]:
        """Try to open a fluid window starting at ``now``.

        Returns the exclusive end time ``t1`` (the first instant that
        must be simulated exactly), or None when any steadiness
        predicate vetoes or the window would be shorter than
        ``min_window``.  ``hard_edge`` lets the caller contribute its
        own bound (the device passes its next measure tick).

        The returned ``t1`` is exactly the earliest transient time:
        the fluid→exact handoff lands *on* the transient event, which
        is what the boundary property tests assert.
        """
        env = self.env
        if env.tracer is not None:
            # Tracing needs per-frame causality, which only exact DES
            # produces — traced hybrid runs are byte-identical to
            # traced exact runs by construction.
            self.note_forced("tracer")
            return None
        for check in self._steady_checks:
            reason = check(now)
            if reason is not None:
                self.note_forced(reason)
                return None
        t1 = min(hard_edge, now + self.max_window, env.event_horizon())
        pinned = self.next_pinned(now)
        if pinned < t1:
            t1 = pinned
        for provider in self._edge_providers:
            edge = provider(now)
            if edge < t1:
                t1 = edge
        if t1 - now < self.min_window:
            self.note_forced("short-window")
            return None
        self.windows_entered += 1
        stats = env.stats
        if stats is not None:
            stats.fluid_windows += 1
        return t1

    def account(self, frames: int, seconds: float) -> None:
        """Credit one completed analytic window's work."""
        self.frames_fluid += frames
        self.fluid_seconds += seconds
        stats = self.env.stats
        if stats is not None:
            stats.fluid_frames += frames

    # ------------------------------------------------------------------
    def summary(self) -> str:
        reasons = ", ".join(
            f"{name}:{n}" for name, n in self.forced_exact.most_common(4)
        )
        return (
            f"{self.windows_entered} fluid windows / "
            f"{self.frames_fluid} frames analytic / "
            f"{self.fluid_seconds:.1f}s fluid time; forced exact: "
            f"{reasons or '-'}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FluidRegime {self.summary()}>"
