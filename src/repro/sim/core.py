"""The simulation environment: clock, event heap, run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventPriority,
    Timeout,
)
from repro.sim.process import Process


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment for a deterministic event-driven simulation.

    Time is a ``float`` in *seconds* (the natural unit for this paper:
    frame periods, deadlines and controller steps are all expressed in
    seconds).  Events at equal timestamps are ordered by
    ``(priority, insertion sequence)`` so runs are fully deterministic.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # heap entries: (time, priority, seq, event)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def queue_size(self) -> int:
        """Number of scheduled-but-unprocessed events (introspection)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling / run loop
    # ------------------------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: int = EventPriority.NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Put a triggered event on the heap, ``delay`` seconds ahead."""
        if event._scheduled:
            raise RuntimeError(f"{event!r} scheduled twice")
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, int(priority), self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        if when < self._now:  # pragma: no cover - heap guarantees monotonicity
            raise RuntimeError("time went backwards")
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An error nobody waited on: surface it rather than lose it.
            exc = event.value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until=None``: run until no events remain.
        * ``until=<number>``: run until simulation time reaches it (the
          clock is advanced to exactly that time on return).
        * ``until=<Event>``: run until the event fires; returns its
          value (raising if it failed).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until={horizon:g} is in the past (now={self._now:g})"
                    )
                stop = Event(self)
                # LOW priority: events *at* the horizon still fire first.
                stop._ok = True
                stop._value = None
                self.schedule(stop, priority=EventPriority.LOW, delay=horizon - self._now)
            stop.add_callback(self._stop_callback)

        try:
            while True:
                try:
                    self.step()
                except EmptySchedule:
                    break
        except StopSimulation as exc:
            return exc.value
        finally:
            if stop is not None and not stop.processed:
                stop.remove_callback(self._stop_callback)

        if stop is not None and not stop.triggered:
            raise RuntimeError(
                "run() finished with no events left, but the 'until' event "
                f"{stop!r} never fired"
            )
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event.ok:
            raise StopSimulation(event.value)
        event.defuse()
        raise event.value
