"""The simulation environment: clock, event heap, run loop.

Hot-path notes (see ``docs/performance.md`` for the full cost model):

* cancelled events are *lazily deleted* — they stay in the heap as dead
  entries that :meth:`Environment.step` skips, and the heap is compacted
  once dead entries dominate;
* :meth:`Environment.sleep` resumes the active process through a
  reusable pre-wired event instead of a fresh ``Timeout`` + callback
  registration per tick;
* the opt-in :class:`EnvStats` block counts scheduling activity without
  adding more than a ``None``-check to the uninstrumented hot path.

Setting ``REPRO_SIM_SLOWPATH=1`` in the environment disables the sleep
fast path and the call-site timer optimizations (the offload watchdog
and link delivery fall back to one process per timer), which is the
escape hatch the determinism tests diff against.
"""

from __future__ import annotations

import heapq
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventPriority,
    PENDING,
    Timeout,
)
from repro.sim.process import Process


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


@dataclass
class EnvStats:
    """Opt-in kernel counters (``Environment(stats=True)``).

    Every field is maintained by the kernel itself — unlike
    :class:`~repro.sim.debug.KernelProbe`, which monkey-wraps ``step``
    from the outside — so cancellation and lazy-deletion bookkeeping
    (``events_cancelled``/``events_skipped``/``heap_compactions``) are
    exact.  ``events_by_process`` attributes each scheduled event to the
    process that was active when it was scheduled, which is the first
    thing to read when one component floods the heap.
    """

    events_scheduled: int = 0
    events_processed: int = 0
    events_cancelled: int = 0
    #: dead (cancelled) entries dropped when they reached the heap top
    events_skipped: int = 0
    heap_compactions: int = 0
    peak_heap_size: int = 0
    #: hybrid-kernel regime counters (zero on exact-kernel runs):
    #: analytic windows entered, frames advanced without events, and
    #: times the regime refused a window and stayed on exact DES
    fluid_windows: int = 0
    fluid_frames: int = 0
    fluid_forced_exact: int = 0
    #: scheduling process name -> events scheduled while it was active
    events_by_process: Counter = field(default_factory=Counter)

    def summary(self) -> str:
        top = ", ".join(
            f"{name}:{n}" for name, n in self.events_by_process.most_common(5)
        )
        return (
            f"{self.events_processed} processed / {self.events_scheduled} "
            f"scheduled, {self.events_cancelled} cancelled "
            f"({self.events_skipped} lazily skipped, "
            f"{self.heap_compactions} compactions), "
            f"peak heap {self.peak_heap_size}, "
            f"fluid: {self.fluid_windows} windows / "
            f"{self.fluid_frames} frames analytic / "
            f"{self.fluid_forced_exact} forced-exact, "
            f"top schedulers: {top or '-'}"
        )

    # Reports and ``repro profile`` print the stats block directly;
    # before the hybrid kernel this fell back to the dataclass repr,
    # which silently hid every counter added after the fact.
    __str__ = summary

    def as_dict(self) -> dict:
        return {
            "events_scheduled": self.events_scheduled,
            "events_processed": self.events_processed,
            "events_cancelled": self.events_cancelled,
            "events_skipped": self.events_skipped,
            "heap_compactions": self.heap_compactions,
            "peak_heap_size": self.peak_heap_size,
            "fluid_windows": self.fluid_windows,
            "fluid_frames": self.fluid_frames,
            "fluid_forced_exact": self.fluid_forced_exact,
            "events_by_process": dict(self.events_by_process),
        }


#: dead entries tolerated before a cancel may trigger compaction
_COMPACT_DEAD_MIN = 512

#: when not None, every new Environment gets an EnvStats block that is
#: also appended here — how ``repro profile`` reaches the environments
#: constructed deep inside experiment runners
_stats_sink: Optional[List["EnvStats"]] = None


def capture_env_stats(sink: Optional[List["EnvStats"]]) -> None:
    """Install (or clear, with None) the global EnvStats capture sink."""
    global _stats_sink
    _stats_sink = sink


class Environment:
    """Execution environment for a deterministic event-driven simulation.

    Time is a ``float`` in *seconds* (the natural unit for this paper:
    frame periods, deadlines and controller steps are all expressed in
    seconds).  Events at equal timestamps are ordered by
    ``(priority, insertion sequence)`` so runs are fully deterministic.
    """

    def __new__(cls, *args, **kwargs):
        # ``REPRO_SIM_CALENDAR=1`` swaps the binary heap for the
        # bucketed calendar-queue prototype without touching any of the
        # hot-path code below (see repro/sim/calendar.py and the bench
        # comparison in docs/performance.md).
        if cls is Environment and os.environ.get("REPRO_SIM_CALENDAR"):
            from repro.sim.calendar import CalendarEnvironment

            return super().__new__(CalendarEnvironment)
        return super().__new__(cls)

    def __init__(self, initial_time: float = 0.0, stats: bool = False) -> None:
        self._now = float(initial_time)
        # heap entries: (time, priority, seq, event)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: cancelled entries still sitting in the heap (lazy deletion)
        self._dead = 0
        #: active numeric ``run(until=...)`` bound — the event horizon
        #: the fluid regime may never advance past (inf outside run()
        #: or when running to an Event / to exhaustion)
        self._run_horizon = float("inf")
        #: hybrid-kernel regime manager (:class:`repro.sim.fluid.
        #: FluidRegime`), attached by scenario wiring under
        #: ``--kernel hybrid``; None = pure exact DES
        self.regime: Optional[Any] = None
        sink = _stats_sink
        if stats or sink is not None:
            self._stats: Optional[EnvStats] = EnvStats()
            if sink is not None:
                sink.append(self._stats)
        else:
            self._stats = None
        #: escape hatch: force the pre-optimization code paths
        self._slowpath = bool(os.environ.get("REPRO_SIM_SLOWPATH"))
        #: opt-in per-frame span tracer (:class:`repro.trace.Tracer`).
        #: None by default; every instrumentation point in the testbed
        #: guards on it, so the untraced hot path pays one attribute
        #: load and a None-check per hooked operation.
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def slowpath(self) -> bool:
        """True when ``REPRO_SIM_SLOWPATH=1`` disabled the fast paths."""
        return self._slowpath

    @property
    def stats(self) -> Optional[EnvStats]:
        """The kernel counter block, or None when not enabled."""
        return self._stats

    def enable_stats(self) -> EnvStats:
        """Attach (or return the existing) :class:`EnvStats` block."""
        if self._stats is None:
            self._stats = EnvStats()
        return self._stats

    def queue_size(self) -> int:
        """Number of *live* scheduled-but-unprocessed events.

        Cancelled entries awaiting lazy deletion are excluded, so
        fault-invariant checks and debug dumps keep seeing the schedule
        the simulation will actually execute.
        """
        return len(self._queue) - self._dead

    def event_horizon(self) -> float:
        """Furthest time the current run is allowed to reach.

        A numeric ``run(until=t)`` bounds it at ``t``; running to an
        event or to heap exhaustion leaves it at ``inf``.  The fluid
        regime queries this so an analytic window can never leap past
        the stop time and report work from beyond the end of the run.
        """
        return self._run_horizon

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Event:
        """Resume the active process ``delay`` seconds from now.

        The allocation-free fast path for periodic loops (camera frame
        clock, controller period, GPU batch former): the process's
        pre-wired resume event is rescheduled instead of building a
        ``Timeout`` + callback list + registration per tick.  Outside a
        process (or under ``REPRO_SIM_SLOWPATH=1``) this degrades to a
        plain :class:`Timeout`.

        The returned event is single-waiter and must be yielded
        immediately by the calling process — it cannot be composed with
        ``|``/``&`` or shared; use :meth:`timeout` for that.
        """
        proc = self._active_process
        if proc is None:
            return Timeout(self, delay)
        return proc.sleep(delay)

    def call_later(
        self,
        delay: float,
        fn: Callable[[Event], None],
        value: Any = None,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Run ``fn(event)`` after ``delay`` seconds; cancellable.

        The one-shot timer primitive behind the offload deadline
        watchdog and hedge timers: one heap entry, no process, and
        :meth:`Event.cancel` retires it for O(1) when the guarded
        outcome settles first.  ``value`` rides on the event
        (``event.value`` inside the callback) so callers need no
        closure per timer.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        ev = Event(self)
        ev._ok = True
        ev._value = value
        ev.callbacks.append(fn)
        self.schedule(ev, priority=priority, delay=delay)
        return ev

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling / run loop
    # ------------------------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: int = EventPriority.NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Put a triggered event on the heap, ``delay`` seconds ahead."""
        if event._scheduled:
            raise RuntimeError(f"{event!r} scheduled twice")
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, int(priority), self._seq, event))
        self._seq += 1
        stats = self._stats
        if stats is not None:
            stats.events_scheduled += 1
            depth = len(self._queue) - self._dead
            if depth > stats.peak_heap_size:
                stats.peak_heap_size = depth
            active = self._active_process
            if active is not None:
                stats.events_by_process[active.name] += 1

    def _note_cancel(self) -> None:
        """Account one lazy deletion; compact when dead entries dominate."""
        self._dead += 1
        if self._stats is not None:
            self._stats.events_cancelled += 1
        if self._dead > _COMPACT_DEAD_MIN and self._dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and re-heapify (O(live) amortized)."""
        self._queue = [entry for entry in self._queue if not entry[3]._cancelled]
        heapq.heapify(self._queue)
        self._dead = 0
        if self._stats is not None:
            self._stats.heap_compactions += 1

    def peek(self) -> float:
        """Timestamp of the next *live* event, or ``inf`` if none.

        Dead (cancelled) entries at the heap top are pruned as a side
        effect, so the returned time is one ``step`` would advance to.
        """
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._dead -= 1
            if self._stats is not None:
                self._stats.events_skipped += 1
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process exactly one live event (skipping cancelled entries)."""
        queue = self._queue
        while True:
            try:
                when, _prio, _seq, event = heapq.heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
            if not event._cancelled:
                break
            # dead entry: drop it without touching the clock
            self._dead -= 1
            if self._stats is not None:
                self._stats.events_skipped += 1
        if when < self._now:  # pragma: no cover - heap guarantees monotonicity
            raise RuntimeError("time went backwards")
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if self._stats is not None:
            self._stats.events_processed += 1

        if not event._ok and not event._defused:
            # An error nobody waited on: surface it rather than lose it.
            exc = event.value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until=None``: run until no events remain.
        * ``until=<number>``: run until simulation time reaches it (the
          clock is advanced to exactly that time on return).
        * ``until=<Event>``: run until the event fires; returns its
          value (raising if it failed).  An already-processed event
          returns (or raises) immediately.
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    # Already processed: the wait is over before it
                    # starts — never attach the stop callback (it would
                    # fire inline and leak StopSimulation to the caller).
                    if stop._ok:
                        return stop._value
                    stop._defused = True
                    raise stop._value
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until={horizon:g} is in the past (now={self._now:g})"
                    )
                stop = Event(self)
                # LOW priority: events *at* the horizon still fire first.
                stop._ok = True
                stop._value = None
                self.schedule(stop, priority=EventPriority.LOW, delay=horizon - self._now)
                self._run_horizon = horizon
            stop.add_callback(self._stop_callback)

        try:
            while True:
                try:
                    self.step()
                except EmptySchedule:
                    break
        except StopSimulation as exc:
            return exc.value
        finally:
            self._run_horizon = float("inf")
            # Teardown: detach the stop callback only when the stop
            # event is still pending (a processed stop already consumed
            # it, and a triggered one is about to) — the O(n) scan of a
            # popular event's callback list is paid only on the paths
            # that actually abandoned the wait.
            if stop is not None and stop._value is PENDING:
                stop.remove_callback(self._stop_callback)

        if stop is not None and not stop.triggered:
            raise RuntimeError(
                "run() finished with no events left, but the 'until' event "
                f"{stop!r} never fired"
            )
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event.ok:
            raise StopSimulation(event.value)
        event.defuse()
        raise event.value
