"""Per-frame causal tracing (spans + golden-trace regression harness).

The observability layer the aggregate metrics cannot provide: one
causally-linked span tree per captured frame, following it through
capture -> routing -> local inference or offload (attempts, retries,
link traversals, server admission/batching/GPU) -> terminal
classification, plus a global event stream for control-plane decisions
(``P_o`` updates, degraded-input repairs, breaker transitions,
supervision restarts).

Tracing is **off by default and free when off**: every hook in the hot
path is guarded by a single ``env.tracer is None`` check (see
``docs/observability.md`` for the measured overhead budget).  Enable it
by attaching a :class:`Tracer` to a built runtime's environment::

    runtime = build_runtime(scenario)
    runtime.env.tracer = Tracer()
    result = runtime.run()
    doc = trace_document(runtime.env.tracer, meta={...})

Canonical serialization (:func:`trace_document` / :func:`dumps_trace`)
is byte-deterministic for a given seed — independent of callback
interleaving and of the ``REPRO_SIM_SLOWPATH`` kernel escape hatch — so
serialized traces double as golden regression artifacts
(``tests/goldens/``), compared structurally with :func:`diff_traces`.
"""

from repro.trace.diff import diff_traces, first_divergence
from repro.trace.golden import (
    TRACE_VERSION,
    dumps_trace,
    load_trace,
    terminal_counts,
    trace_document,
)
from repro.trace.scenarios import (
    TRACE_SCENARIOS,
    run_trace_scenario,
    trace_chaos,
    trace_fig3,
    trace_supervision,
)
from repro.trace.spans import TERMINAL_STATUSES, Span
from repro.trace.tracer import Tracer

__all__ = [
    "Span",
    "TERMINAL_STATUSES",
    "TRACE_SCENARIOS",
    "TRACE_VERSION",
    "Tracer",
    "diff_traces",
    "dumps_trace",
    "first_divergence",
    "load_trace",
    "run_trace_scenario",
    "terminal_counts",
    "trace_chaos",
    "trace_document",
    "trace_fig3",
    "trace_supervision",
]
