"""The span model: one interval of work, nested under a parent.

A :class:`Span` is deliberately minimal — name, ``[start, end]`` in
sim-seconds, an optional status string, a flat attribute dict and a
list of children.  There are no span ids: the tree structure *is* the
identity, which keeps serialized traces independent of runtime
interleaving (two runs that do the same work produce the same tree no
matter which callback fired first at an equal timestamp).

Frame root spans carry a **terminal status**: exactly one of
:data:`TERMINAL_STATUSES` describing how the frame's story ended.  The
property tests in ``tests/test_trace_properties.py`` assert every
captured frame reaches exactly one of them on a fully drained run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: every way a captured frame's story can end
TERMINAL_STATUSES = frozenset(
    {
        #: local pipeline finished the inference
        "completed-local",
        #: offload response beat the deadline
        "completed-offload",
        #: deadline expired (silent network/server, or explicit
        #: overload pushback with no retry budget left) — the frame
        #: counted toward ``T``; ``attrs["cause"]`` says which
        "timeout",
        #: server rejection without overload semantics
        "rejected",
        #: skipped at the device: local engine (or its 1-deep slot) was
        #: full, including breaker-fallback frames it could not absorb
        "dropped-skip",
        #: in-flight offload forgotten by a device reboot — neither
        #: success nor timeout
        "aborted",
    }
)

#: status given to spans still open when the trace is serialized
OPEN_STATUS = "unsettled"


class Span:
    """One node of a frame's causal tree."""

    __slots__ = ("name", "start", "end", "status", "attrs", "children")

    def __init__(
        self, name: str, start: float, attrs: Optional[Dict[str, Any]] = None
    ) -> None:
        self.name = name
        self.start = float(start)
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.children: List["Span"] = []

    # ------------------------------------------------------------------
    def child(
        self, name: str, start: float, attrs: Optional[Dict[str, Any]] = None
    ) -> "Span":
        """Open a child span under this one."""
        span = Span(name, start, attrs)
        self.children.append(span)
        return span

    def finish(
        self,
        end: float,
        status: Optional[str] = None,
        **attrs: Any,
    ) -> "Span":
        """Close the span; the *first* status to land wins.

        Later ``finish`` calls may still extend the interval (a parent
        closed again when a late child lands) but must not rewrite an
        already-recorded outcome — terminal classification is
        exactly-once by construction.
        """
        self.end = float(end) if self.end is None else max(self.end, float(end))
        if status is not None and self.status is None:
            self.status = status
        if attrs:
            self.attrs.update(attrs)
        return self

    @property
    def finished(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, [{self.start:g}, "
            f"{'…' if self.end is None else format(self.end, 'g')}], "
            f"status={self.status!r}, {len(self.children)} children)"
        )
