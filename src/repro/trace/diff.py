"""Structural trace diff: report the *first diverging span*, not a blob.

A golden-trace mismatch rendered as a unified diff of two 100 kB JSON
files tells you nothing; the question is always "which frame, which
hop, what changed".  :func:`first_divergence` walks two canonical
documents (see :mod:`repro.trace.golden`) in deterministic order —
version, meta, frames by ``(tenant, frame_id)``, each span tree
depth-first, then the event stream — and stops at the first field that
differs, returning its path (``frames[cam0/57].offload.uplink``), the
field, and both values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class Divergence:
    """The first point where two traces disagree."""

    path: str
    field: str
    a: Any
    b: Any

    def __str__(self) -> str:
        return f"{self.path}: {self.field} {self.a!r} != {self.b!r}"


def _span_label(span: Dict[str, Any]) -> str:
    return str(span.get("name", "?"))


def _diff_span(a: Dict[str, Any], b: Dict[str, Any], path: str) -> Optional[Divergence]:
    for field in ("name", "start", "end", "status"):
        if a.get(field) != b.get(field):
            return Divergence(path, field, a.get(field), b.get(field))
    attrs_a, attrs_b = a.get("attrs", {}), b.get("attrs", {})
    for key in sorted(set(attrs_a) | set(attrs_b)):
        if attrs_a.get(key) != attrs_b.get(key):
            return Divergence(
                path, f"attrs[{key}]", attrs_a.get(key), attrs_b.get(key)
            )
    kids_a, kids_b = a.get("children", []), b.get("children", [])
    for i, (ca, cb) in enumerate(zip(kids_a, kids_b)):
        hit = _diff_span(ca, cb, f"{path}.{_span_label(ca)}[{i}]")
        if hit is not None:
            return hit
    if len(kids_a) != len(kids_b):
        return Divergence(path, "child-count", len(kids_a), len(kids_b))
    return None


def first_divergence(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Optional[Divergence]:
    """The first structural difference between two trace documents."""
    if a.get("version") != b.get("version"):
        return Divergence("trace", "version", a.get("version"), b.get("version"))
    meta_a, meta_b = a.get("meta", {}), b.get("meta", {})
    for key in sorted(set(meta_a) | set(meta_b)):
        if meta_a.get(key) != meta_b.get(key):
            return Divergence("meta", key, meta_a.get(key), meta_b.get(key))
    frames_a, frames_b = a.get("frames", []), b.get("frames", [])
    for fa, fb in zip(frames_a, frames_b):
        key_a = (fa.get("tenant"), fa.get("frame_id"))
        key_b = (fb.get("tenant"), fb.get("frame_id"))
        label = f"frames[{key_a[0]}/{key_a[1]}]"
        if key_a != key_b:
            return Divergence("frames", "frame-key", key_a, key_b)
        hit = _diff_span(fa.get("span", {}), fb.get("span", {}), label)
        if hit is not None:
            return hit
    if len(frames_a) != len(frames_b):
        return Divergence("frames", "frame-count", len(frames_a), len(frames_b))
    events_a, events_b = a.get("events", []), b.get("events", [])
    for i, (ea, eb) in enumerate(zip(events_a, events_b)):
        label = f"events[{i}]({ea.get('name')})"
        for field in ("time", "name"):
            if ea.get(field) != eb.get(field):
                return Divergence(label, field, ea.get(field), eb.get(field))
        attrs_a, attrs_b = ea.get("attrs", {}), eb.get("attrs", {})
        for key in sorted(set(attrs_a) | set(attrs_b)):
            if attrs_a.get(key) != attrs_b.get(key):
                return Divergence(
                    label, f"attrs[{key}]", attrs_a.get(key), attrs_b.get(key)
                )
    if len(events_a) != len(events_b):
        return Divergence("events", "event-count", len(events_a), len(events_b))
    return None


def diff_traces(a: Dict[str, Any], b: Dict[str, Any]) -> Optional[str]:
    """Human-readable first-divergence report, or None when identical."""
    hit = first_divergence(a, b)
    if hit is None:
        return None
    return f"traces diverge at {hit}"
