"""Canned traced scenarios behind ``framefeedback trace <name>``.

Each scenario is a *short* run — golden traces are reviewed by humans
and replayed in tests, so seconds of sim time, not the paper's full
4,000-frame streams.  The three names mirror the regimes PRs 1-4
built:

* ``fig3`` — the Table V network regimes compressed to three seconds
  each (full offload at bw=10, partial at bw=4, dead path at bw=1), on
  the bare paper client.  Exercises completed-offload,
  completed-local, dropped-skip and deadline timeouts.
* ``chaos`` — burst loss, a server crash and a bandwidth collapse with
  the full resilience stack on (hedged retries, circuit breaker,
  server pushback).  Adds retry attempts, overload pushback,
  breaker-fallback routing and breaker transition events.
* ``supervision`` — a controller kill and a device reboot under a
  supervisor.  Adds crash/restart/decay events and aborted frames.

Every run attaches one fresh :class:`~repro.trace.Tracer` to the
runtime environment before it starts and serializes via
:func:`~repro.trace.golden.trace_document`, so two calls with equal
arguments are byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.trace.golden import trace_document
from repro.trace.tracer import Tracer

#: default stream length per scenario (frames at 30 fps); chosen so
#: every fault window plus its recovery fits inside the run while the
#: golden files stay reviewable
DEFAULT_FRAMES = {"fig3": 270, "chaos": 240, "supervision": 240, "fleet": 240}


def trace_fig3(seed: int = 0, frames: int = 270) -> Dict[str, Any]:
    """Compressed Table V sweep (bw 10 -> 4 -> 1) on the bare client."""
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, build_runtime
    from repro.experiments.standard import framefeedback_factory
    from repro.netem.schedule import NetworkSchedule

    third = frames / 30.0 / 3.0
    scenario = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=frames),
        network=NetworkSchedule.from_rows(
            [(0.0, 10.0, 0.0), (third, 4.0, 2.0), (2.0 * third, 1.0, 5.0)]
        ),
        seed=seed,
    )
    runtime = build_runtime(scenario)
    tracer = Tracer()
    runtime.env.tracer = tracer
    runtime.run()
    return trace_document(
        tracer, meta={"scenario": "fig3", "seed": seed, "frames": frames}
    )


def trace_chaos(seed: int = 0, frames: int = 240) -> Dict[str, Any]:
    """Compressed resilience-chaos plan with the full defense stack."""
    from repro.device.config import DeviceConfig
    from repro.experiments.chaos import ChaosScenario, run_chaos
    from repro.experiments.scenario import Scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.faults.link import BandwidthCollapse, BurstLoss
    from repro.faults.server import ServerCrash
    from repro.faults.windows import FaultTimeline
    from repro.resilience.config import ResilienceConfig

    chaos = ChaosScenario(
        base=Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=frames),
            seed=seed,
        ),
        injectors=[
            BurstLoss(FaultTimeline.from_rows([(1.5, 1.0)]), loss=0.3, burst=6.0),
            ServerCrash(FaultTimeline.from_rows([(3.0, 2.0)])),
            BandwidthCollapse(FaultTimeline.from_rows([(6.5, 1.5)]), factor=0.01),
        ],
        resilience=ResilienceConfig(),
    )
    tracer = Tracer()
    result = run_chaos(chaos, tracer=tracer)
    # Breaker transitions are recorded by the breaker itself; merge them
    # into the event stream post-run instead of double-hooking on_open.
    for t, state in result.breaker_transitions:
        tracer.event(t, "breaker.transition", state=state.value)
    return trace_document(
        tracer, meta={"scenario": "chaos", "seed": seed, "frames": frames}
    )


def trace_supervision(seed: int = 0, frames: int = 240) -> Dict[str, Any]:
    """Compressed kill/restart plan under a checkpointing supervisor."""
    from repro.device.config import DeviceConfig
    from repro.experiments.chaos import ChaosScenario, run_chaos
    from repro.experiments.scenario import Scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.faults.process import ControllerKill, DeviceReboot
    from repro.faults.windows import FaultTimeline
    from repro.supervision.supervisor import SupervisionConfig

    chaos = ChaosScenario(
        base=Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=frames),
            seed=seed,
        ),
        injectors=[
            ControllerKill(FaultTimeline.from_rows([(3.0, 2.0)])),
            DeviceReboot(FaultTimeline.from_rows([(6.5, 1.0)])),
        ],
        supervision=SupervisionConfig(),
    )
    tracer = Tracer()
    result = run_chaos(chaos, tracer=tracer)
    for t, state in result.breaker_transitions:
        tracer.event(t, "breaker.transition", state=state.value)
    return trace_document(
        tracer, meta={"scenario": "supervision", "seed": seed, "frames": frames}
    )


def trace_fleet(seed: int = 0, frames: int = 240) -> Dict[str, Any]:
    """Compressed fleet kill/failover plan on a three-server pool.

    Every offload span's ``server`` child carries the serving host's
    name, ejection/readmission land as ``fleet.eject``/``fleet.readmit``
    events, and a rescued frame shows a ``fleet.failover`` event plus a
    second uplink traversal under the same offload span.
    """
    from repro.experiments.chaos import run_chaos
    from repro.fleet.chaos import fleet_chaos_scenario

    chaos = fleet_chaos_scenario(
        seed=seed, total_frames=frames, kill=("edge0", 3.14, 2.0)
    )
    tracer = Tracer()
    result = run_chaos(chaos, tracer=tracer)
    for t, state in result.breaker_transitions:
        tracer.event(t, "breaker.transition", state=state.value)
    return trace_document(
        tracer, meta={"scenario": "fleet", "seed": seed, "frames": frames}
    )


TRACE_SCENARIOS = {
    "fig3": trace_fig3,
    "chaos": trace_chaos,
    "supervision": trace_supervision,
    "fleet": trace_fleet,
}


def run_trace_scenario(
    name: str, seed: int = 0, frames: Optional[int] = None
) -> Dict[str, Any]:
    """Run one named scenario with tracing on; returns the document."""
    try:
        runner = TRACE_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown trace scenario {name!r}; choose from {sorted(TRACE_SCENARIOS)}"
        ) from None
    if frames is None:
        frames = DEFAULT_FRAMES[name]
    return runner(seed=seed, frames=frames)
