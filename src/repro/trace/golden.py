"""Canonical trace serialization (the golden-file format).

Determinism contract
--------------------
``dumps_trace(trace_document(tracer, meta))`` must be byte-identical
for two runs of the same scenario with the same seed — including one
run on the kernel fast path and one under ``REPRO_SIM_SLOWPATH=1``.
Everything order-dependent is therefore normalized here rather than
trusted from runtime:

* frames sort by ``(tenant, frame_id)``, never by completion order;
* children sort by ``(start, end, name, canonical-attrs)`` — two
  callbacks firing at the same instant may append in either order at
  runtime, but serialize identically;
* events sort by ``(time, name, canonical-attrs)``;
* every timestamp is rounded to :data:`TIME_DECIMALS` decimal places,
  washing out float noise far below any simulated duration;
* parent intervals are extended bottom-up over their children, so the
  nesting invariant (child ⊆ parent) holds *by construction* even when
  a late link delivery lands after the frame's terminal classification
  already closed the root;
* spans still open at serialization time get status ``"unsettled"``
  (e.g. server spans whose queue died with a crashed service loop).

Nothing runtime-unstable — object ids, request ids from the global
counter, wall-clock anything — may appear in the document.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.trace.spans import OPEN_STATUS, Span
from repro.trace.tracer import Tracer

#: format version stamped into every document; bump on any change to
#: the canonical structure so trace-diff can refuse apples-vs-oranges
TRACE_VERSION = 1

#: timestamp rounding (decimal places of a sim-second)
TIME_DECIMALS = 9


def _round(t: float) -> float:
    return round(float(t), TIME_DECIMALS)


def _canon_value(value: Any) -> Any:
    """Attr values as stable JSON scalars (floats rounded)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return _round(value)
    if isinstance(value, (int, str)):
        return value
    return str(value)


def _canon_span(span: Span) -> Dict[str, Any]:
    """Canonical dict for one span subtree; returns it with a real end."""
    children = [_canon_span(c) for c in span.children]
    end = _round(span.end) if span.end is not None else _round(span.start)
    if children:
        end = max(end, max(c["end"] for c in children))
        children.sort(
            key=lambda c: (
                c["start"],
                c["end"],
                c["name"],
                json.dumps(c["attrs"], sort_keys=True),
            )
        )
    return {
        "name": span.name,
        "start": _round(span.start),
        "end": end,
        "status": span.status if span.status is not None else OPEN_STATUS,
        "attrs": {k: _canon_value(v) for k, v in span.attrs.items()},
        "children": children,
    }


def trace_document(
    tracer: Tracer, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """One run's canonical trace document (JSON-ready)."""
    frames: List[Dict[str, Any]] = []
    for (tenant, frame_id), root in tracer.frames.items():
        frames.append(
            {"tenant": tenant, "frame_id": frame_id, "span": _canon_span(root)}
        )
    frames.sort(key=lambda f: (f["tenant"], f["frame_id"]))
    events = sorted(
        (
            {
                "time": _round(t),
                "name": name,
                "attrs": {k: _canon_value(v) for k, v in attrs.items()},
            }
            for t, name, attrs in tracer.events
        ),
        key=lambda e: (e["time"], e["name"], json.dumps(e["attrs"], sort_keys=True)),
    )
    return {
        "version": TRACE_VERSION,
        "meta": dict(meta or {}),
        "frames": frames,
        "events": events,
    }


def dumps_trace(doc: Dict[str, Any]) -> str:
    """The byte-exact golden serialization of a trace document."""
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def load_trace(path: str) -> Dict[str, Any]:
    """Read a golden trace document from disk."""
    with open(path) as fh:
        return json.load(fh)


def terminal_counts(doc: Dict[str, Any]) -> Dict[str, int]:
    """Frames per terminal status — the trace's one-line summary."""
    counts: Dict[str, int] = {}
    for frame in doc["frames"]:
        status = frame["span"]["status"]
        counts[status] = counts.get(status, 0) + 1
    return dict(sorted(counts.items()))
