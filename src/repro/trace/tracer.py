"""The tracer: the hook surface the testbed components talk to.

One :class:`Tracer` is attached to an :class:`~repro.sim.core.Environment`
(``env.tracer = Tracer()``) and observes one run.  Components guard
every hook with a single ``env.tracer is None`` check, so the
uninstrumented hot path pays one attribute load per hooked operation
and nothing else.

Correlation model
-----------------
Frames are keyed by ``(tenant, frame_id)`` — the device registers each
*captured* frame (probes, with their negative ids, are never
registered), and every downstream hook (offload client, links, server)
resolves its payload's key against the registry; unknown keys
(background load, probes) no-op.  Server requests and in-flight link
payloads are additionally keyed by object identity, because one frame
can legally have two requests alive at once (a hedge retransmission
racing the original).

Control-plane happenings that belong to no single frame — controller
updates, degraded-input repairs, breaker transitions, supervision
restarts — land in a flat, timestamped :attr:`events` stream.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.trace.spans import Span

#: (tenant, frame_id)
FrameKey = Tuple[str, int]


class Tracer:
    """Collects one run's span trees and control-plane events."""

    def __init__(self) -> None:
        #: frame key -> root span, in registration order
        self.frames: Dict[FrameKey, Span] = {}
        #: flat control-plane stream: (time, name, attrs)
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []
        #: frame key -> that frame's offload span (kept after close so
        #: late responses still attach to the right parent)
        self._offload: Dict[FrameKey, Span] = {}
        #: frame key -> open local-pipeline span
        self._local: Dict[FrameKey, Span] = {}
        #: id(request) -> open server span
        self._server: Dict[int, Span] = {}
        #: id(payload) -> open link span
        self._links: Dict[int, Span] = {}

    # ------------------------------------------------------------------
    # control-plane events
    # ------------------------------------------------------------------
    def event(self, time: float, name: str, **attrs: Any) -> None:
        """Record one timestamped control-plane event."""
        self.events.append((float(time), name, attrs))

    # ------------------------------------------------------------------
    # frame lifecycle (device)
    # ------------------------------------------------------------------
    def begin_frame(
        self, tenant: str, frame_id: int, time: float, nbytes: int, route: str
    ) -> Span:
        """Register one captured frame and its routing decision."""
        root = Span("frame", time, {"frame_id": frame_id, "route": route})
        if nbytes:
            root.attrs["nbytes"] = nbytes
        self.frames[(tenant, frame_id)] = root
        return root

    def finish_frame(
        self, tenant: str, frame_id: int, time: float, status: str, **attrs: Any
    ) -> None:
        """Terminal classification; first status wins (exactly-once)."""
        root = self.frames.get((tenant, frame_id))
        if root is not None:
            root.finish(time, status, **attrs)

    def frame_root(self, tenant: str, frame_id: int) -> Optional[Span]:
        return self.frames.get((tenant, frame_id))

    # ------------------------------------------------------------------
    # local pipeline
    # ------------------------------------------------------------------
    def begin_local(self, tenant: str, frame_id: int, time: float) -> None:
        root = self.frames.get((tenant, frame_id))
        if root is not None:
            self._local[(tenant, frame_id)] = root.child("local", time)

    def end_local(
        self, tenant: str, frame_id: int, time: float, latency: float
    ) -> None:
        span = self._local.pop((tenant, frame_id), None)
        if span is not None:
            span.finish(time, "ok", infer_seconds=latency)

    # ------------------------------------------------------------------
    # offload client
    # ------------------------------------------------------------------
    def begin_offload(self, tenant: str, frame_id: int, time: float) -> None:
        root = self.frames.get((tenant, frame_id))
        if root is not None:
            self._offload[(tenant, frame_id)] = root.child("offload", time)

    def end_offload(
        self, tenant: str, frame_id: int, time: float, status: str, **attrs: Any
    ) -> None:
        span = self._offload.get((tenant, frame_id))
        if span is not None:
            span.finish(time, status, **attrs)

    def offload_span(self, tenant: str, frame_id: int) -> Optional[Span]:
        return self._offload.get((tenant, frame_id))

    # ------------------------------------------------------------------
    # link traversals
    # ------------------------------------------------------------------
    def link_send(
        self,
        link_name: str,
        payload: Any,
        time: float,
        nbytes: int,
        deliver: Callable[[Any], None],
        env: Any,
    ) -> Tuple[Optional[Span], Callable[[Any], None]]:
        """Open a traversal span; returns (span, wrapped-deliver).

        Untraced payloads (no registered frame) come back unchanged.
        The wrapped callback closes the span at the delivery instant
        before handing the payload to the real receiver.
        """
        key = self._payload_key(payload)
        if key is None:
            return None, deliver
        parent = self._offload.get(key) or self.frames.get(key)
        if parent is None:
            return None, deliver
        attrs: Dict[str, Any] = {"nbytes": nbytes}
        attempt = getattr(payload, "attempt", None)
        if attempt:
            attrs["attempt"] = attempt
        span = parent.child(link_name, time, attrs)
        self._links[id(payload)] = span

        def traced_deliver(delivered: Any, _span=span, _inner=deliver) -> None:
            self._links.pop(id(delivered), None)
            _span.finish(env.now, "delivered")
            _inner(delivered)

        return span, traced_deliver

    def link_drop(self, payload: Any, time: float, reason: str) -> None:
        """Close a traversal span for a payload the link gave up on."""
        span = self._links.pop(id(payload), None)
        if span is not None:
            span.finish(time, f"dropped-{reason}")

    def link_overflow(
        self, link_name: str, payload: Any, time: float, nbytes: int
    ) -> None:
        """Tail drop at enqueue: a zero-length traversal that never ran."""
        key = self._payload_key(payload)
        if key is None:
            return
        parent = self._offload.get(key) or self.frames.get(key)
        if parent is not None:
            parent.child(link_name, time, {"nbytes": nbytes}).finish(
                time, "dropped-overflow"
            )

    # ------------------------------------------------------------------
    # server
    # ------------------------------------------------------------------
    def server_submit(
        self, request: Any, time: float, server: Optional[str] = None
    ) -> None:
        """``server`` carries the host's identity in fleet runs; the
        single-server path passes None so existing goldens stay
        byte-stable."""
        key = self._payload_key(request)
        if key is None:
            return
        parent = self._offload.get(key) or self.frames.get(key)
        if parent is None:
            return
        attrs = {"server": server} if server is not None else None
        self._server[id(request)] = parent.child("server", time, attrs)

    def server_respond(
        self, request: Any, time: float, outcome: str, **attrs: Any
    ) -> None:
        span = self._server.pop(id(request), None)
        if span is not None:
            span.finish(time, outcome, **attrs)

    def server_dead(
        self, request: Any, time: float, server: Optional[str] = None
    ) -> None:
        """A request landed on a crashed host: answered by silence."""
        key = self._payload_key(request)
        if key is None:
            return
        parent = self._offload.get(key) or self.frames.get(key)
        if parent is not None:
            attrs = {"server": server} if server is not None else None
            parent.child("server", time, attrs).finish(time, "dropped-crash")

    # ------------------------------------------------------------------
    @staticmethod
    def _payload_key(payload: Any) -> Optional[FrameKey]:
        tenant = getattr(payload, "tenant", None)
        frame_id = getattr(payload, "frame_id", None)
        if tenant is None or frame_id is None:
            return None
        return (tenant, frame_id)
