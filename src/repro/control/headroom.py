"""Latency-headroom control: a predictive FrameFeedback variant.

FrameFeedback reacts to *violations* — by the time `T > 0`, frames
have already been lost.  A natural future-work question: can the same
loop act on the tail latency of frames that *succeeded*, backing off
while there is still headroom under the deadline?

This controller drives the bucket's p95 RTT toward a target fraction
of the deadline with a PD law in normalized-deadline units, falling
back to FrameFeedback-style behaviour when a bucket has no successful
offloads to measure (total failure: violations are then the only
signal, so the `T`-threshold branch applies):

```
headroom e(t) = (target_frac * L - rtt_p95) / L        (per bucket)
u = (K_P e + K_D de/dt) * F_s,  clamped like Table IV
```

What the benches show (``bench_headroom.py``): the latency signal cuts
the violation rate roughly in half on the Table V network schedule at
*equal* throughput, and by >3x on the Table VI load schedule at a
~7 % throughput cost — anticipating congestion beats reacting to it,
at the price of leaving a little capacity unused near the cliff.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.base import Controller, Measurement
from repro.control.pid import DiscretePid, PidGains
from repro.control.validity import sanitize_timeout_rate


@dataclass(frozen=True)
class HeadroomSettings:
    """Gains and limits of the latency-headroom law."""

    kp: float = 0.35
    kd: float = 0.2
    #: p95 target as a fraction of the deadline
    target_frac: float = 0.75
    #: Table IV-style asymmetric update clamps (fractions of F_s)
    update_min_frac: float = -0.5
    update_max_frac: float = 0.1
    #: violations/s treated as total-failure signal when blind
    t_threshold_frac: float = 0.1
    measure_period: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_frac < 1.0:
            raise ValueError(f"target fraction must be in (0,1), got {self.target_frac}")
        if self.update_min_frac > 0 or self.update_max_frac < 0:
            raise ValueError("update clamp must bracket zero")


class HeadroomController(Controller):
    """Drives successful-offload p95 RTT toward a deadline fraction."""

    name = "Headroom"

    def __init__(
        self,
        frame_rate: float,
        deadline: float,
        settings: HeadroomSettings = HeadroomSettings(),
    ) -> None:
        if frame_rate <= 0 or deadline <= 0:
            raise ValueError("frame rate and deadline must be positive")
        self.frame_rate = frame_rate
        self.deadline = deadline
        self.settings = settings
        self._pid = DiscretePid(
            PidGains(kp=settings.kp, kd=settings.kd),
            output_min=settings.update_min_frac,  # in F_s fractions
            output_max=settings.update_max_frac,
        )
        self._target = 0.0
        self.last_error = 0.0

    def reset(self) -> None:
        self._pid.reset()
        self._target = 0.0
        self.last_error = 0.0

    @property
    def target(self) -> float:
        return self._target

    def update(self, measurement: Measurement) -> float:
        s = self.settings
        fs = self.frame_rate
        # degraded telemetry (NaN/±inf/negative T) must not poison the
        # PD arithmetic; repair exactly like the measurement guard does
        t_rate, _ = sanitize_timeout_rate(measurement.timeout_rate, fs)

        if measurement.rtt_p95 is not None:
            # normalized headroom error: +target_frac when instant,
            # negative when the tail pushes past the target
            e = (s.target_frac * self.deadline - measurement.rtt_p95) / self.deadline
            # violations eat into headroom too: each violated frame is
            # a sample at (beyond) the deadline the p95 cannot see
            if t_rate > 0:
                e -= t_rate / fs
        else:
            # blind bucket: no successes to measure.  Same piecewise
            # fallback as FrameFeedback, in normalized units.
            if t_rate > 0:
                e = (s.t_threshold_frac * fs - t_rate) / fs
            else:
                e = (fs - self._target) / fs

        u = self._pid.step(e, s.measure_period) * fs
        # the PID clamps in F_s fractions; u is already bounded in fps
        self.last_error = e
        self._target = min(max(self._target + u, 0.0), fs)
        return self._target
