"""Controller interface and the per-step measurement record.

The paper's Table I notation maps onto :class:`Measurement` fields:

====  ===========================================  =======================
Sym   Description                                  Field
====  ===========================================  =======================
F_s   source frame rate                            ``frame_rate``
P     total successful inference rate              ``throughput``
P_l   local processing rate (completions/s)        ``local_rate``
P_o   offloading rate (attempts/s this bucket)     ``offload_rate``
T     rate of offloaded frames timing out          ``timeout_rate`` (the
      (windowed average, the controller's input)   last-bucket value is
                                                   ``timeout_rate_last``)
====  ===========================================  =======================

``T_n`` vs ``T_l`` (network- vs load-induced timeouts) are *not*
observable by the device — that is the paper's point; the breakdown is
still recorded by the experiment harness from the simulator's
omniscient view for analysis.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Measurement:
    """One measurement-period snapshot handed to the controller."""

    time: float
    frame_rate: float
    #: the target ``P_o`` currently in force
    offload_target: float
    #: offload attempts/s in the closed bucket (measured ``P_o``)
    offload_rate: float
    #: successful offloads/s in the closed bucket
    offload_success_rate: float
    #: windowed average timeout rate ``T`` (the controller input)
    timeout_rate: float
    #: timeout rate of just the last bucket
    timeout_rate_last: float
    #: local completions/s (``P_l`` as achieved)
    local_rate: float
    #: successful inferences/s (``P``)
    throughput: float
    #: outcome of the most recent heartbeat probe, if one was sent
    probe_ok: Optional[bool] = None
    #: mean end-to-end RTT of this bucket's successful offloads (None
    #: if none succeeded) — used by latency-headroom control variants
    rtt_mean: Optional[float] = None
    #: 95th-percentile RTT of this bucket's successful offloads
    rtt_p95: Optional[float] = None
    #: server overload-pushback responses/s this bucket (resilience
    #: layer only; always 0.0 for the paper's bare client)
    overload_rate: float = 0.0
    #: retransmissions placed on the wire/s this bucket
    retry_rate: float = 0.0
    #: circuit-breaker state at bucket close: 0 closed, 0.5 half-open,
    #: 1 open (0.0 when no resilience layer is configured)
    breaker_open: float = 0.0


class Controller(abc.ABC):
    """Decides the next offload-rate target once per measurement period."""

    #: set True by controllers that need a per-period heartbeat probe
    wants_probe: bool = False

    #: human-readable name used in reports/legends
    name: str = "controller"

    @abc.abstractmethod
    def update(self, measurement: Measurement) -> float:
        """Return the new ``P_o`` target (frames/s, clamped by caller)."""

    def reset(self) -> None:
        """Clear internal state between runs (default: nothing)."""

    def initial_target(self, frame_rate: float) -> float:
        """``P_o`` before the first measurement (default: 0)."""
        return 0.0

    # ------------------------------------------------------------------
    # checkpointing (supervision layer); default: not checkpointable
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Optional[dict]:
        """JSON-able mutable state for warm restart, or None.

        Controllers that return None are restarted *cold* by the
        supervision layer (``reset()`` + ``initial_target``); those
        that return a dict must accept it back via
        :meth:`restore_state` on a freshly ``reset()`` instance.
        """
        return None

    def restore_state(self, state: dict) -> None:
        """Reinstate state captured by :meth:`snapshot_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support warm restart"
        )
