"""The controller zoo: rate-limited offloading policies + the registry.

Two genuinely different policies from the offloading literature join
the FrameFeedback lineup, both built against the same
:class:`~repro.control.base.Controller` seam:

* :class:`TokenBucketOptimalController` — the threshold structure of
  the *optimal* offloading policy under a token-bucket rate constraint
  (Chakrabarti et al., arXiv:2010.13737).  The device pays for
  offloads from a ``(fill_rate, burst)`` bucket; the policy spends
  burst only above an occupancy threshold and conserves tokens when
  recent offloads are timing out (spending on frames that miss the
  deadline wastes the budget the policy is optimizing).
* :class:`RateLimitedMDPController` — the rate-limited MDP variant
  (Qiu et al., arXiv:2208.00485): value iteration over a discretized
  ``(bucket occupancy, feedback staleness)`` state space, precomputed
  *offline* in the constructor (the model is a pure function of the
  parameters, no RNG), with a table lookup online.

Neither policy closes the loop on the timeout rate the way the PD law
does — the token bucket enforces an average-rate budget and the MDP
plans against a fixed offline model — which is exactly what makes them
worth racing in the tournament (:mod:`repro.experiments.tournament`).

:func:`zoo_controllers` is the **device-local registry**: every member
is a one-argument factory (``factory(DeviceConfig) -> Controller``),
so the whole zoo is constructible without testbed wiring.  The fuzz
suite and the conformance battery (``tests/test_controller_conformance
.py``) iterate this registry — a controller added here is automatically
fuzzed, conformance-tested, and tournament-eligible; context-needing
controllers (Oracle, Reservation) stay outside it by design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.control.base import Controller, Measurement
from repro.control.validity import sanitize_timeout_rate


def _finite(value: float, lo: float, hi: float, default: float = 0.0) -> float:
    """Clamp a possibly-degraded measured quantity into ``[lo, hi]``."""
    if value is None or not math.isfinite(value):
        return default
    return min(max(value, lo), hi)


# ----------------------------------------------------------------------
# Chakrabarti et al. (2010.13737): token-bucket threshold policy
# ----------------------------------------------------------------------
class TokenBucketOptimalController(Controller):
    """Threshold policy on bucket occupancy under a token-bucket budget.

    The bucket fills at ``fill_rate`` tokens/s (one token = one
    offloaded frame) up to ``burst`` tokens; measured offload attempts
    debit it.  The paper's optimal policy is a *threshold* on bucket
    state — spend liberally when tokens are plentiful, conserve when
    they are scarce — which the rate seam expresses as:

    * occupancy >= ``threshold_frac``: pay the fill rate plus enough of
      the surplus above the threshold to drain it within one period
      (``spend_frac`` of it);
    * occupancy < threshold: taper linearly below the fill rate so the
      bucket refills toward the threshold;
    * windowed timeout rate above ``t_tolerance``: withhold burst
      spending entirely — a token spent on a frame that misses its
      deadline is a token wasted, so the budget waits out the
      impairment (this is the only feedback the policy consumes).
    """

    name = "TokenBucket"

    def __init__(
        self,
        frame_rate: float,
        fill_rate: Optional[float] = None,
        burst: Optional[float] = None,
        threshold_frac: float = 0.5,
        spend_frac: float = 1.0,
        t_tolerance: float = 0.5,
        period: float = 1.0,
    ) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.frame_rate = frame_rate
        self.fill_rate = 0.4 * frame_rate if fill_rate is None else fill_rate
        if self.fill_rate <= 0:
            raise ValueError(f"fill rate must be positive, got {self.fill_rate}")
        self.burst = 2.0 * self.fill_rate if burst is None else burst
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        if not 0.0 < threshold_frac <= 1.0:
            raise ValueError(
                f"threshold fraction must be in (0, 1], got {threshold_frac}"
            )
        if not 0.0 < spend_frac <= 1.0:
            raise ValueError(f"spend fraction must be in (0, 1], got {spend_frac}")
        if t_tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {t_tolerance}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.threshold_frac = threshold_frac
        self.spend_frac = spend_frac
        self.t_tolerance = t_tolerance
        self.period = period
        self._tokens = self.burst  # start with a full budget

    # ------------------------------------------------------------------
    @property
    def tokens(self) -> float:
        """Current bucket occupancy (observability)."""
        return self._tokens

    def reset(self) -> None:
        self._tokens = self.burst

    def _policy(self, tokens: float, t_rate: float) -> float:
        """The threshold policy's rate for a bucket state + T reading."""
        threshold = self.threshold_frac * self.burst
        conserve = self.fill_rate * min(tokens / threshold, 1.0)
        if t_rate > self.t_tolerance:
            # impaired: never spend burst, at most the sustainable rate
            return min(conserve, self.fill_rate)
        if tokens >= threshold:
            surplus = (tokens - threshold) * self.spend_frac / self.period
            return self.fill_rate + surplus
        return conserve

    def initial_target(self, frame_rate: float) -> float:
        return min(max(self._policy(self._tokens, 0.0), 0.0), self.frame_rate)

    def update(self, measurement: Measurement) -> float:
        dt = self.period
        t_rate, _ = sanitize_timeout_rate(measurement.timeout_rate, self.frame_rate)
        spent = _finite(measurement.offload_rate, 0.0, self.frame_rate) * dt
        self._tokens = min(
            max(self._tokens + self.fill_rate * dt - spent, 0.0), self.burst
        )
        target = self._policy(self._tokens, t_rate)
        return min(max(target, 0.0), self.frame_rate)

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"tokens": self._tokens}

    def restore_state(self, state: dict) -> None:
        self._tokens = min(max(float(state["tokens"]), 0.0), self.burst)


# ----------------------------------------------------------------------
# Qiu et al. (2208.00485): rate-limited MDP, value-iterated offline
# ----------------------------------------------------------------------
class RateLimitedMDPController(Controller):
    """Table-lookup policy from offline value iteration.

    State space: ``bucket_levels`` quantized token levels x
    ``staleness_levels`` counts of consecutive periods without fresh
    successful-offload feedback.  Actions: offload rates as multiples
    of the fill rate.  The offline model (a pure function of the
    constructor parameters — no RNG; the stochasticity lives in the
    transition *probabilities* value iteration sums over):

    * offloads succeed with probability ``p_ok(staleness)``, linearly
      decaying from 1 toward ``p_floor`` — the Qiu et al. framing where
      stale edge feedback makes offloading risky;
    * reward = expected successful payments minus ``fail_cost`` per
      expected failed one, minus ``overdraft_penalty`` per attempted
      frame beyond the budget (those would violate the rate limit),
      minus a staleness carrying cost — so at high staleness the
      optimal action is a *cheap probe* (small spend, big reset value)
      rather than a full burst, and at staleness 0 it is to spend;
    * bucket transition: refill minus payment (tokens are spent whether
      or not the offload succeeds), clamped and re-quantized;
    * staleness transition: a payment of at least ``stale_reset_rate``
      frames/s resets staleness with probability ``p_ok``; otherwise
      staleness increments (saturating).

    Online, the controller tracks the same two state variables from
    measurements and looks the action up; the emitted target is
    additionally capped by the tokens actually available so the policy
    can never ask for more than the budget covers.
    """

    name = "RateLimitedMDP"

    #: offline value-iteration stop criteria
    _VI_TOL = 1e-10
    _VI_MAX_ITERS = 500

    def __init__(
        self,
        frame_rate: float,
        fill_rate: Optional[float] = None,
        burst: Optional[float] = None,
        bucket_levels: int = 9,
        staleness_levels: int = 6,
        action_fracs: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 1.5, 2.0),
        overdraft_penalty: float = 2.0,
        staleness_cost: float = 0.25,
        fail_cost: float = 1.0,
        p_floor: float = 0.2,
        stale_reset_rate: float = 1.0,
        t_tolerance: float = 0.5,
        discount: float = 0.9,
        period: float = 1.0,
    ) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.frame_rate = frame_rate
        self.fill_rate = 0.4 * frame_rate if fill_rate is None else fill_rate
        if self.fill_rate <= 0:
            raise ValueError(f"fill rate must be positive, got {self.fill_rate}")
        self.burst = 2.0 * self.fill_rate if burst is None else burst
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        if bucket_levels < 2 or staleness_levels < 2:
            raise ValueError("need >= 2 bucket and staleness levels")
        if not action_fracs or any(f < 0 for f in action_fracs):
            raise ValueError(f"action fractions must be >= 0, got {action_fracs}")
        if not 0.0 < discount < 1.0:
            raise ValueError(f"discount must be in (0, 1), got {discount}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 < p_floor <= 1.0:
            raise ValueError(f"p_floor must be in (0, 1], got {p_floor}")
        self.bucket_levels = bucket_levels
        self.staleness_levels = staleness_levels
        self.action_fracs = tuple(action_fracs)
        self.overdraft_penalty = overdraft_penalty
        self.staleness_cost = staleness_cost
        self.fail_cost = fail_cost
        self.p_floor = p_floor
        self.stale_reset_rate = stale_reset_rate
        self.t_tolerance = t_tolerance
        self.discount = discount
        self.period = period

        self._tokens = self.burst
        self._staleness = 0
        #: policy table, ``_policy[bucket_index][staleness_index]`` ->
        #: offload rate (frames/s); filled by offline value iteration
        self._policy: List[List[float]] = self._value_iterate()

    # ------------------------------------------------------------------
    # offline planning (pure function of the constructor parameters)
    # ------------------------------------------------------------------
    def _level(self, tokens: float) -> int:
        """Nearest quantized bucket level for an occupancy."""
        frac = min(max(tokens / self.burst, 0.0), 1.0)
        return int(round(frac * (self.bucket_levels - 1)))

    def _p_ok(self, staleness: int) -> float:
        """Modeled offload success probability at a staleness level."""
        frac = staleness / (self.staleness_levels - 1)
        return 1.0 - (1.0 - self.p_floor) * frac

    def _step_model(self, tokens: float, staleness: int, rate: float):
        """One offline step: ``(reward, tokens', [(prob, staleness'), ...])``."""
        dt = self.period
        available = tokens + self.fill_rate * dt
        paid = min(rate * dt, available)
        overdraft = max(rate * dt - available, 0.0)
        stale_frac = staleness / (self.staleness_levels - 1)
        p_ok = self._p_ok(staleness)
        reward = (
            paid * (p_ok - self.fail_cost * (1.0 - p_ok))
            - self.overdraft_penalty * overdraft
            - self.staleness_cost * self.fill_rate * dt * stale_frac
        )
        next_tokens = min(max(available - paid, 0.0), self.burst)
        staler = min(staleness + 1, self.staleness_levels - 1)
        if paid >= self.stale_reset_rate * dt:
            branches = [(p_ok, 0), (1.0 - p_ok, staler)]
        else:
            branches = [(1.0, staler)]
        return reward, next_tokens, branches

    def _value_iterate(self) -> List[List[float]]:
        nb, ns = self.bucket_levels, self.staleness_levels
        levels = [self.burst * i / (nb - 1) for i in range(nb)]
        actions = [f * self.fill_rate for f in self.action_fracs]

        # precompute the (reward, transition) table once
        table = [
            [
                [self._step_model(levels[i], j, a) for a in actions]
                for j in range(ns)
            ]
            for i in range(nb)
        ]

        def q_value(entry, value) -> float:
            reward, nt, branches = entry
            ni = self._level(nt)
            future = sum(p * value[ni][nj] for p, nj in branches if p > 0.0)
            return reward + self.discount * future

        value = [[0.0] * ns for _ in range(nb)]
        for _ in range(self._VI_MAX_ITERS):
            delta = 0.0
            for i in range(nb):
                for j in range(ns):
                    best = max(q_value(entry, value) for entry in table[i][j])
                    delta = max(delta, abs(best - value[i][j]))
                    value[i][j] = best
            if delta < self._VI_TOL:
                break

        policy = [[0.0] * ns for _ in range(nb)]
        for i in range(nb):
            for j in range(ns):
                best_q, best_a = -math.inf, 0.0
                for k, entry in enumerate(table[i][j]):
                    q = q_value(entry, value)
                    if q > best_q + 1e-12:  # first maximizer wins ties
                        best_q, best_a = q, actions[k]
                policy[i][j] = best_a
        return policy

    # ------------------------------------------------------------------
    @property
    def tokens(self) -> float:
        return self._tokens

    @property
    def staleness(self) -> int:
        return self._staleness

    def reset(self) -> None:
        self._tokens = self.burst
        self._staleness = 0

    def _lookup(self) -> float:
        rate = self._policy[self._level(self._tokens)][self._staleness]
        # never ask for more than the budget covers this period
        cap = self._tokens / self.period + self.fill_rate
        return min(max(min(rate, cap), 0.0), self.frame_rate)

    def initial_target(self, frame_rate: float) -> float:
        return self._lookup()

    def update(self, measurement: Measurement) -> float:
        dt = self.period
        spent = _finite(measurement.offload_rate, 0.0, self.frame_rate) * dt
        self._tokens = min(
            max(self._tokens + self.fill_rate * dt - spent, 0.0), self.burst
        )
        t_rate, _ = sanitize_timeout_rate(measurement.timeout_rate, self.frame_rate)
        success = _finite(measurement.offload_success_rate, 0.0, self.frame_rate)
        fresh = success * dt >= self.stale_reset_rate * dt and t_rate <= self.t_tolerance
        if fresh:
            self._staleness = 0
        else:
            self._staleness = min(self._staleness + 1, self.staleness_levels - 1)
        return self._lookup()

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"tokens": self._tokens, "staleness": self._staleness}

    def restore_state(self, state: dict) -> None:
        self._tokens = min(max(float(state["tokens"]), 0.0), self.burst)
        self._staleness = min(
            max(int(state["staleness"]), 0), self.staleness_levels - 1
        )


# ----------------------------------------------------------------------
# the device-local zoo registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ZooEntry:
    """One registered controller: factory + report/doc metadata."""

    #: registry name — must match the scenario-config controller name
    name: str
    #: one-argument factory (DeviceConfig -> Controller)
    factory: Callable
    #: one-line policy description (docs/controllers.md zoo table)
    policy: str
    #: what internal state the controller carries
    state: str
    #: paper citation, or the section of the source paper
    citation: str


def _zoo_entries() -> Tuple[ZooEntry, ...]:
    # imports are local so the registry never drags testbed wiring in
    from repro.control.aimd import AimdController
    from repro.control.baselines import (
        AllOrNothingController,
        AlwaysOffloadController,
        FixedRateController,
        LocalOnlyController,
    )
    from repro.control.framefeedback import FrameFeedbackController
    from repro.control.headroom import HeadroomController
    from repro.control.quality import AdaptiveQualityController

    return (
        ZooEntry(
            "FrameFeedback",
            lambda config: FrameFeedbackController(config.frame_rate),
            "piecewise PD law on the windowed timeout rate",
            "P_o target + PID history",
            "source paper §III (ipps 2024)",
        ),
        ZooEntry(
            "LocalOnly",
            lambda config: LocalOnlyController(),
            "never offload",
            "stateless",
            "source paper §IV-B.1",
        ),
        ZooEntry(
            "AlwaysOffload",
            lambda config: AlwaysOffloadController(),
            "offload every frame, ignore all feedback",
            "stateless",
            "source paper §IV-B.2",
        ),
        ZooEntry(
            "AllOrNothing",
            lambda config: AllOrNothingController(),
            "heartbeat-gated total offloading",
            "last probe outcome",
            "DeepDecision-style, source paper §IV-B.3",
        ),
        ZooEntry(
            "FixedRate",
            lambda config: FixedRateController(min(11.0, config.frame_rate)),
            "open-loop constant offload rate",
            "stateless",
            "characterization baseline (docs/controller.md)",
        ),
        ZooEntry(
            "AIMD",
            lambda config: AimdController(config.frame_rate),
            "additive increase / multiplicative decrease on violations",
            "current target",
            "TCP congestion-control analogue",
        ),
        ZooEntry(
            "Headroom",
            lambda config: HeadroomController(config.frame_rate, config.deadline),
            "latency-headroom-predictive FrameFeedback variant",
            "P_o target + PID history + RTT estimate",
            "extension (docs/controller.md)",
        ),
        ZooEntry(
            "FrameFeedback+Q",
            lambda config: AdaptiveQualityController(config.frame_rate),
            "FrameFeedback + JPEG-quality ladder",
            "P_o target + PID history + quality step",
            "source paper §II-D",
        ),
        ZooEntry(
            "TokenBucket",
            lambda config: TokenBucketOptimalController(config.frame_rate),
            "occupancy-threshold spending under a token-bucket budget",
            "bucket occupancy",
            "Chakrabarti et al., arXiv:2010.13737",
        ),
        ZooEntry(
            "RateLimitedMDP",
            lambda config: RateLimitedMDPController(config.frame_rate),
            "offline value iteration over (bucket, staleness); table lookup",
            "bucket occupancy + staleness counter",
            "Qiu et al., arXiv:2208.00485",
        ),
    )


def zoo_entries() -> Tuple[ZooEntry, ...]:
    """Every registered zoo member with its metadata."""
    return _zoo_entries()


def zoo_controllers() -> Dict[str, Callable]:
    """Device-local registry: name -> one-argument factory.

    Everything here is fuzzed (``tests/test_controller_fuzz.py``) and
    conformance-tested (``tests/test_controller_conformance.py``); the
    names resolve through :func:`repro.experiments.standard
    .extended_controllers`, so every member is also addressable from
    scenario configs and the tournament.
    """
    return {entry.name: entry.factory for entry in _zoo_entries()}
