"""Automated gain tuning (§III-B, mechanized).

The paper tunes by hand: raise ``K_P`` until the PV oscillates under
constant conditions, then raise ``K_D`` until the oscillation damps
("increasing K_P increases sensitivity while degrading stability, and
increasing K_D decreases overshoot and improves stability").  Classic
Ziegler–Nichols does not apply directly (no integral term, noisy PV),
so this module provides

* :func:`sweep_gains` — evaluate a (K_P, K_D) grid against a scenario
  and score each trace's stability (Fig 2's data, made quantitative);
* :func:`tune_ziegler_nichols_like` — the paper's two-phase procedure
  as an algorithm: escalate ``K_P`` to the oscillation threshold, then
  escalate ``K_D`` until the trace damps.

Both take a ``run`` callable mapping settings to a ``(times, values)``
``P_o`` trace, so they are independent of the simulation harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.analysis.stability import StabilityReport, stability_report
from repro.control.framefeedback import FrameFeedbackSettings

#: run(settings) -> (times, P_o values) arrays
RunFn = Callable[[FrameFeedbackSettings], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class GainSweepResult:
    """One grid point's settings and stability scores."""

    settings: FrameFeedbackSettings
    report: StabilityReport

    @property
    def kp(self) -> float:
        return self.settings.kp

    @property
    def kd(self) -> float:
        return self.settings.kd


def sweep_gains(
    run: RunFn,
    kp_values: Sequence[float],
    kd_values: Sequence[float],
    base: FrameFeedbackSettings = FrameFeedbackSettings(),
) -> List[GainSweepResult]:
    """Evaluate every (K_P, K_D) combination."""
    results: List[GainSweepResult] = []
    for kp in kp_values:
        for kd in kd_values:
            settings = FrameFeedbackSettings(
                kp=kp,
                ki=base.ki,
                kd=kd,
                update_min_frac=base.update_min_frac,
                update_max_frac=base.update_max_frac,
                t_threshold_frac=base.t_threshold_frac,
                measure_period=base.measure_period,
            )
            t, v = run(settings)
            results.append(GainSweepResult(settings, stability_report(t, v)))
    return results


def tune_ziegler_nichols_like(
    run: RunFn,
    kp_start: float = 0.05,
    kp_step: float = 0.05,
    kp_max: float = 1.0,
    kd_step: float = 0.065,
    kd_max: float = 1.0,
    oscillation_threshold: float = 3.0,
    metric: Callable[[StabilityReport], float] = lambda rep: rep.std,
    base: FrameFeedbackSettings = FrameFeedbackSettings(),
) -> FrameFeedbackSettings:
    """The §III-B procedure, automated.

    Phase 1: raise ``K_P`` (with ``K_D = 0``) until the trace's
    instability ``metric`` crosses ``oscillation_threshold`` (or the
    sweep limit).  Phase 2: holding that ``K_P``, raise ``K_D`` until
    the metric drops back under the threshold.

    The default metric is the settled trace's standard deviation in
    frames/s — on this plant, derivative action narrows the swing band
    and cuts overshoot rather than reducing sample-to-sample
    jaggedness, so an absolute swing measure is what "the PV
    oscillated" operationally means.
    """

    def with_gains(kp: float, kd: float) -> FrameFeedbackSettings:
        return FrameFeedbackSettings(
            kp=kp,
            ki=base.ki,
            kd=kd,
            update_min_frac=base.update_min_frac,
            update_max_frac=base.update_max_frac,
            t_threshold_frac=base.t_threshold_frac,
            measure_period=base.measure_period,
        )

    # Phase 1: find the sensitivity edge.
    kp = kp_start
    chosen_kp = kp_max
    while kp <= kp_max + 1e-12:
        t, v = run(with_gains(kp, 0.0))
        if metric(stability_report(t, v)) >= oscillation_threshold:
            chosen_kp = kp
            break
        kp += kp_step
    else:  # pragma: no cover - defensive; loop breaks or exhausts
        chosen_kp = kp_max

    # Phase 2: damp it with derivative action.
    kd = kd_step
    chosen_kd = kd_max
    while kd <= kd_max + 1e-12:
        t, v = run(with_gains(chosen_kp, kd))
        if metric(stability_report(t, v)) < oscillation_threshold:
            chosen_kd = kd
            break
        kd += kd_step

    return with_gains(chosen_kp, chosen_kd)
