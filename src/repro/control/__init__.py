"""Controllers: the paper's contribution plus its evaluation baselines.

* :class:`~repro.control.framefeedback.FrameFeedbackController` — the
  paper's PD law (Eqs. 3–5, Table IV settings);
* :class:`~repro.control.pid.DiscretePid` — the textbook discrete PID
  (Eq. 2) FrameFeedback is derived from, reusable standalone;
* :mod:`~repro.control.baselines` — LocalOnly, AlwaysOffload and the
  DeepDecision-style AllOrNothing heartbeat controller (§IV-B);
* :mod:`~repro.control.tuning` — the §III-B Ziegler–Nichols-style
  tuning procedure as an automated sweep.
"""

from repro.control.aimd import AimdController
from repro.control.base import Controller, Measurement
from repro.control.baselines import (
    AllOrNothingController,
    AlwaysOffloadController,
    FixedRateController,
    LocalOnlyController,
)
from repro.control.framefeedback import FrameFeedbackController, FrameFeedbackSettings
from repro.control.headroom import HeadroomController, HeadroomSettings
from repro.control.oracle import OracleController
from repro.control.pid import DiscretePid, PidGains
from repro.control.quality import AdaptiveQualityController
from repro.control.tuning import GainSweepResult, sweep_gains, tune_ziegler_nichols_like
from repro.control.validity import (
    GuardDecision,
    MeasurementGuard,
    MeasurementValidity,
    sanitize_timeout_rate,
)
from repro.control.zoo import (
    RateLimitedMDPController,
    TokenBucketOptimalController,
    ZooEntry,
    zoo_controllers,
    zoo_entries,
)

__all__ = [
    "AdaptiveQualityController",
    "AimdController",
    "AllOrNothingController",
    "AlwaysOffloadController",
    "Controller",
    "DiscretePid",
    "FixedRateController",
    "FrameFeedbackController",
    "FrameFeedbackSettings",
    "GainSweepResult",
    "GuardDecision",
    "HeadroomController",
    "HeadroomSettings",
    "LocalOnlyController",
    "Measurement",
    "MeasurementGuard",
    "MeasurementValidity",
    "OracleController",
    "PidGains",
    "RateLimitedMDPController",
    "TokenBucketOptimalController",
    "ZooEntry",
    "sanitize_timeout_rate",
    "sweep_gains",
    "tune_ziegler_nichols_like",
    "zoo_controllers",
    "zoo_entries",
]
