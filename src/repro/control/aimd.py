"""AIMD offload controller (extension baseline).

Additive-Increase / Multiplicative-Decrease is the classic congestion-
control response and the natural "obvious alternative" to a PD law:
raise ``P_o`` by a fixed step while violations stay under a tolerance,
cut it by a factor when they don't.  Comparing it against FrameFeedback
(``benchmarks/bench_controllers.py``) quantifies what the piecewise PD
error function buys: AIMD's sawtooth keeps *re-testing* the violation
boundary, so under steady impairment it oscillates around the cliff
instead of settling just below it.
"""

from __future__ import annotations

from repro.control.base import Controller, Measurement


class AimdController(Controller):
    """TCP-style additive-increase / multiplicative-decrease."""

    name = "AIMD"

    def __init__(
        self,
        frame_rate: float,
        increase: float = 2.0,
        decrease_factor: float = 0.5,
        t_tolerance: float = 0.5,
        floor: float = 1.0,
    ) -> None:
        """
        Args:
            frame_rate: source rate ``F_s`` (frames/s).
            increase: additive step per clean period (frames/s).
            decrease_factor: multiplicative cut on violation.
            t_tolerance: violations/s treated as noise-free "clean".
            floor: minimum target kept as a standing probe (frames/s),
                serving the same recovery role as FrameFeedback's
                ``0.1 F_s`` fixed point.
        """
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        if increase <= 0:
            raise ValueError(f"increase must be positive, got {increase}")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease factor must be in (0, 1), got {decrease_factor}"
            )
        if floor < 0 or floor > frame_rate:
            raise ValueError(f"floor must be in [0, F_s], got {floor}")
        self.frame_rate = frame_rate
        self.increase = increase
        self.decrease_factor = decrease_factor
        self.t_tolerance = t_tolerance
        self.floor = floor
        self._target = floor

    def reset(self) -> None:
        self._target = self.floor

    def initial_target(self, frame_rate: float) -> float:
        return self.floor

    @property
    def target(self) -> float:
        return self._target

    def update(self, measurement: Measurement) -> float:
        if measurement.timeout_rate <= self.t_tolerance:
            self._target = min(self._target + self.increase, self.frame_rate)
        else:
            self._target = max(self._target * self.decrease_factor, self.floor)
        return self._target
