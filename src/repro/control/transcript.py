"""Controller transcripts: record/replay for golden-master regression.

The control layer is pure: given the same sequence of
:class:`Measurement` records, a controller must produce the same
sequence of targets forever.  Transcripts freeze that contract:

* :func:`record` drives a controller through a measurement sequence
  and captures ``(measurement, target)`` pairs as a JSON-able dict;
* :func:`replay` re-drives a *fresh* controller through the recorded
  measurements and verifies each output against the transcript.

``tests/test_transcripts.py`` keeps golden transcripts for the paper's
control law (and the extension laws), so any refactor that changes
controller arithmetic — even a floating-point reassociation — fails a
test with the exact step where behaviour diverged.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Sequence

from repro.control.base import Controller, Measurement

#: bump when the transcript format changes
FORMAT_VERSION = 1


def _measurement_to_dict(m: Measurement) -> dict:
    return dataclasses.asdict(m)


def _measurement_from_dict(d: dict) -> Measurement:
    # Tolerate transcripts recorded by a *newer* Measurement: unknown
    # keys are dropped (fields only ever accrete, with defaults, so a
    # replay on the intersection stays meaningful).
    known = {f.name for f in dataclasses.fields(Measurement)}
    return Measurement(**{k: v for k, v in d.items() if k in known})


def record(
    controller: Controller, measurements: Sequence[Measurement]
) -> Dict[str, object]:
    """Drive ``controller`` through ``measurements``; capture outputs."""
    steps: List[dict] = []
    for m in measurements:
        target = controller.update(m)
        steps.append(
            {"measurement": _measurement_to_dict(m), "target": float(target)}
        )
    return {
        "version": FORMAT_VERSION,
        "controller": controller.name,
        "initial_target": float(controller.initial_target(measurements[0].frame_rate))
        if measurements
        else 0.0,
        "steps": steps,
    }


class TranscriptMismatch(AssertionError):
    """Raised by :func:`replay` at the first diverging step."""

    def __init__(self, step: int, expected: float, actual: float) -> None:
        super().__init__(
            f"step {step}: transcript target {expected!r}, controller "
            f"produced {actual!r}"
        )
        self.step = step
        self.expected = expected
        self.actual = actual


def replay(
    controller_factory: Callable[[], Controller],
    transcript: Dict[str, object],
    rel_tol: float = 1e-9,
) -> None:
    """Verify a fresh controller reproduces ``transcript`` exactly."""
    if transcript.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"transcript version {transcript.get('version')} != {FORMAT_VERSION}"
        )
    controller = controller_factory()
    for i, step in enumerate(transcript["steps"]):  # type: ignore[index]
        m = _measurement_from_dict(step["measurement"])
        actual = controller.update(m)
        expected = step["target"]
        tol = rel_tol * max(abs(expected), 1.0)
        if abs(actual - expected) > tol:
            raise TranscriptMismatch(i, expected, actual)


def dumps(transcript: Dict[str, object]) -> str:
    return json.dumps(transcript, indent=1, sort_keys=True)


def loads(text: str) -> Dict[str, object]:
    return json.loads(text)
