"""A clairvoyant oracle controller (upper-bound reference).

The oracle reads the experiment's own schedules — the exact link
conditions and background load at every instant — and computes the
largest offloading rate the system can sustain within the deadline.
No real controller can do this (the whole point of FrameFeedback is
that these quantities are unobservable); the oracle exists to measure
*regret*: how much throughput feedback control leaves on the table
relative to perfect knowledge (``benchmarks/bench_regret.py``).

The capacity model mirrors the substrate analytically:

* **link capacity** — per-frame wire time is the sum of per-packet
  serialization plus the expected ARQ stall overhead
  ``loss/(1-loss) * (RTO + packet_time)`` per packet;
* **deadline feasibility** — if a single frame's expected end-to-end
  time (uplink transit + minimum server latency + downlink) exceeds
  the deadline, no offloading rate works;
* **server headroom** — the GPU's mixed-workload saturation rate
  (per-model batches round-robin at the batch cap) minus the scheduled
  background rate;
* safety margins keep the operating point off the queueing cliff.
"""

from __future__ import annotations

from typing import Optional

from repro.control.base import Controller, Measurement
from repro.models.latency import GpuBatchModel
from repro.models.zoo import EFFICIENTNET_B0, MOBILENET_V3_SMALL, get_model
from repro.netem.link import Link, LinkConditions
from repro.netem.packet import PACKET_PAYLOAD_BYTES, packets_for
from repro.netem.schedule import NetworkSchedule
from repro.server.batching import DEFAULT_BATCH_LIMIT
from repro.workloads.loadgen import LoadSchedule

#: stay this far below computed link capacity (queueing safety)
LINK_MARGIN = 0.9
#: stay this far below computed server headroom
SERVER_MARGIN = 0.85


def expected_frame_wire_time(cond: LinkConditions, frame_bytes: int) -> float:
    """Expected serializer occupancy for one frame, ARQ stalls included."""
    n_packets = packets_for(frame_bytes)
    # all-but-last packets are full; the last is whatever remains
    total = 0.0
    remaining = frame_bytes
    for i in range(n_packets):
        payload = min(PACKET_PAYLOAD_BYTES, max(remaining, 1))
        remaining -= payload
        pkt_time = cond.packet_time(payload)
        stall = Link._rto(cond)
        retries = cond.loss / (1.0 - cond.loss) if cond.loss > 0 else 0.0
        total += pkt_time + retries * (stall + pkt_time)
    return total


def link_capacity_fps(cond: LinkConditions, frame_bytes: int) -> float:
    """Sustainable offload rate over the link (frames/s)."""
    return 1.0 / expected_frame_wire_time(cond, frame_bytes)


def mixed_server_capacity(
    gpu: GpuBatchModel, background_active: bool, batch_limit: int = DEFAULT_BATCH_LIMIT
) -> float:
    """Server saturation rate for the experiment's workload mix."""
    mobile = gpu.batch_latency(MOBILENET_V3_SMALL, batch_limit)
    if not background_active:
        return batch_limit / mobile
    effnet = gpu.batch_latency(EFFICIENTNET_B0, batch_limit)
    return 2 * batch_limit / (mobile + effnet)


class OracleController(Controller):
    """Schedule-reading clairvoyant controller."""

    name = "Oracle"

    def __init__(
        self,
        frame_rate: float,
        frame_bytes: int,
        deadline: float,
        network: Optional[NetworkSchedule] = None,
        load: Optional[LoadSchedule] = None,
        gpu_model: Optional[GpuBatchModel] = None,
        model_name: str = "mobilenet_v3_small",
    ) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.frame_rate = frame_rate
        self.frame_bytes = frame_bytes
        self.deadline = deadline
        self.network = network
        self.load = load
        self.gpu = gpu_model or GpuBatchModel()
        self.model = get_model(model_name)

    # ------------------------------------------------------------------
    def target_at(self, t: float) -> float:
        """The sustainable offload rate at time ``t``."""
        cond = self.network.at(t) if self.network is not None else LinkConditions()
        bg_rate = self.load.rate_at(t) if self.load is not None else 0.0

        # deadline feasibility of even a single pipelined frame
        wire = expected_frame_wire_time(cond, self.frame_bytes)
        min_server = self.gpu.batch_latency(self.model, 1)
        transit = wire + cond.propagation_delay * 2 + min_server
        if transit > self.deadline:
            return 0.0

        link_cap = LINK_MARGIN * link_capacity_fps(cond, self.frame_bytes)
        server_cap = mixed_server_capacity(self.gpu, background_active=bg_rate > 0)
        headroom = SERVER_MARGIN * max(0.0, server_cap - bg_rate)
        return max(0.0, min(self.frame_rate, link_cap, headroom))

    def initial_target(self, frame_rate: float) -> float:
        return self.target_at(0.0)

    def update(self, measurement: Measurement) -> float:
        # look one period ahead: the new target applies to the *next*
        # interval, and clairvoyance is the oracle's entire job
        return self.target_at(measurement.time)
