"""Textbook discrete PID (paper Eq. 2), reusable standalone.

FrameFeedback is a PD specialization of this (``K_I = 0``, §III-A.1),
but the full PID is implemented so the repository can ablate the
integral term (EXPERIMENTS.md records that ablation) and so the
control core is a generally useful component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PidGains:
    """Proportional / integral / derivative coefficients."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0


class DiscretePid:
    """Discrete-time PID with output clamping and anti-windup.

    ``u(t) = Kp e(t) + Ki * sum(e dt) + Kd * (e - e_prev)/dt`` with the
    output clamped to ``[output_min, output_max]``.  When the output
    saturates, integration is suspended for error of the saturating
    sign (conditional anti-windup) so the integral never charges
    against a clamp it cannot push through.
    """

    def __init__(
        self,
        gains: PidGains,
        output_min: float = float("-inf"),
        output_max: float = float("inf"),
    ) -> None:
        if output_min > output_max:
            raise ValueError(f"output_min {output_min} > output_max {output_max}")
        self.gains = gains
        self.output_min = output_min
        self.output_max = output_max
        self._integral = 0.0
        self._prev_error: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def integral(self) -> float:
        return self._integral

    @property
    def previous_error(self) -> Optional[float]:
        return self._prev_error

    def reset(self) -> None:
        self._integral = 0.0
        self._prev_error = None

    def snapshot(self) -> dict:
        """JSON-able copy of the mutable state (see :meth:`restore`)."""
        return {"integral": self._integral, "prev_error": self._prev_error}

    def restore(self, state: dict) -> None:
        """Reinstate state captured by :meth:`snapshot`.

        Gains and clamps are construction-time configuration and are
        *not* part of the snapshot; the restored controller must be
        built with the same settings (the supervision layer guarantees
        this by checkpointing the same in-run controller instance).
        """
        self._integral = float(state["integral"])
        prev = state["prev_error"]
        self._prev_error = None if prev is None else float(prev)

    def step(self, error: float, dt: float) -> float:
        """One control step; returns the clamped output ``u``."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        g = self.gains

        derivative = 0.0
        if self._prev_error is not None and g.kd != 0.0:
            derivative = (error - self._prev_error) / dt
        self._prev_error = error

        candidate_integral = self._integral + error * dt
        unclamped = g.kp * error + g.ki * candidate_integral + g.kd * derivative

        if unclamped > self.output_max:
            output = self.output_max
            # anti-windup: only integrate if it pulls away from the clamp
            if error < 0:
                self._integral = candidate_integral
        elif unclamped < self.output_min:
            output = self.output_min
            if error > 0:
                self._integral = candidate_integral
        else:
            output = unclamped
            self._integral = candidate_integral
        return output
