"""Reservation-based controller (the ATOMS-lite client side, §V-B)."""

from __future__ import annotations

from repro.control.base import Controller, Measurement
from repro.server.admission import ReservationBroker


class ReservationController(Controller):
    """Offload exactly what the server-side broker grants.

    The client asks for the full source rate each period and trusts
    the grant completely — no probing, no reaction to timeouts.  That
    is the reservation model's blind spot the paper calls out: the
    broker knows server load, but nobody is watching the client's own
    network path.
    """

    name = "Reservation"

    def __init__(self, frame_rate: float, broker: ReservationBroker, tenant: str) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.frame_rate = frame_rate
        self.broker = broker
        self.tenant = tenant

    def initial_target(self, frame_rate: float) -> float:
        return self.broker.request(self.tenant, frame_rate)

    def update(self, measurement: Measurement) -> float:
        return self.broker.request(self.tenant, self.frame_rate)
