"""Measurement validity taxonomy and controller input hardening.

The paper assumes every 1 s :class:`~repro.control.base.Measurement`
arrives on time, exactly once, in order, with a sane ``timeout_rate``.
Deployed telemetry paths break all four assumptions: collectors restart
and replay windows, clocks step backwards, and a division by a zero
frame count upstream turns ``T`` into NaN.  This module names those
failure modes (:class:`MeasurementValidity`) and provides the two
enforcement pieces used by the device and the supervision layer:

* :func:`sanitize_timeout_rate` — pure range/NaN repair for the single
  field the control law consumes (``T`` must lie in ``[0, F_s]``);
* :class:`MeasurementGuard` — stateful admission control for a stream
  of measurements: duplicate and out-of-order windows are *rejected*
  (the caller holds its last action), gaps beyond a staleness horizon
  are *tagged* so the supervisor can apply its hold-then-decay policy.

Rejection rather than repair for ordering violations is deliberate: a
duplicated window would double-count the derivative term in the PD law
(``de/dt`` over ``dt = 0``), and a late window would apply a stale
error against a target that has since moved.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.control.base import Measurement


class MeasurementValidity(enum.Enum):
    """Why a measurement was (or was not) fit for the control law."""

    VALID = "valid"
    #: admitted, but it arrived after more than ``stale_after_periods``
    #: measure periods of silence — the window it summarizes is old
    STALE = "stale"
    #: rejected: same window timestamp seen twice
    DUPLICATE = "duplicate"
    #: rejected: window timestamp earlier than one already admitted
    OUT_OF_ORDER = "out_of_order"
    #: ``timeout_rate`` was NaN; repaired to 0
    NAN_TIMEOUT_RATE = "nan_timeout_rate"
    #: ``timeout_rate`` was negative (or -inf); repaired to 0
    NEGATIVE_TIMEOUT_RATE = "negative_timeout_rate"
    #: ``timeout_rate`` exceeded ``F_s`` (or was +inf); clamped to F_s
    EXCESSIVE_TIMEOUT_RATE = "excessive_timeout_rate"


#: validity kinds that reject the measurement outright
REJECTING = frozenset(
    {MeasurementValidity.DUPLICATE, MeasurementValidity.OUT_OF_ORDER}
)


def sanitize_timeout_rate(
    value: float, frame_rate: float
) -> Tuple[float, Optional[MeasurementValidity]]:
    """Clamp ``timeout_rate`` into ``[0, frame_rate]``.

    Returns ``(repaired_value, flag)`` where ``flag`` is None when the
    input was already in range.  NaN repairs to 0 — with no credible
    timeout evidence the controller must not treat the window as a
    violation, or a single NaN would slash ``P_o`` by up to ``0.5 F_s``.
    """
    if math.isnan(value):
        return 0.0, MeasurementValidity.NAN_TIMEOUT_RATE
    if value < 0.0:
        return 0.0, MeasurementValidity.NEGATIVE_TIMEOUT_RATE
    if value > frame_rate:
        return frame_rate, MeasurementValidity.EXCESSIVE_TIMEOUT_RATE
    return value, None


@dataclass
class GuardDecision:
    """Outcome of one :meth:`MeasurementGuard.admit` call."""

    #: the (possibly repaired) measurement, or None when rejected
    measurement: Optional[Measurement]
    #: every validity kind that applied (``(VALID,)`` for a clean pass)
    flags: Tuple[MeasurementValidity, ...]

    @property
    def admitted(self) -> bool:
        return self.measurement is not None


@dataclass
class MeasurementGuard:
    """Stateful admission control for a controller's measurement stream.

    One guard per controller input path.  ``admit`` is O(1) and keeps
    per-kind counters (exported into QoS extras by the device) so
    degraded telemetry is observable even when every repair succeeds.
    """

    frame_rate: float
    measure_period: float = 1.0
    #: silence longer than this many periods tags the next admit STALE
    stale_after_periods: float = 3.0
    counts: Dict[str, int] = field(default_factory=dict)
    _last_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {self.frame_rate}")
        if self.measure_period <= 0:
            raise ValueError("measure period must be positive")
        if self.stale_after_periods <= 0:
            raise ValueError("stale_after_periods must be positive")

    # ------------------------------------------------------------------
    @property
    def last_time(self) -> Optional[float]:
        """Timestamp of the last *admitted* measurement."""
        return self._last_time

    def _count(self, kind: MeasurementValidity) -> None:
        self.counts[kind.value] = self.counts.get(kind.value, 0) + 1

    def admit(self, measurement: Measurement) -> GuardDecision:
        """Classify, repair or reject one measurement."""
        flags = []
        last = self._last_time
        if last is not None:
            if measurement.time == last:
                self._count(MeasurementValidity.DUPLICATE)
                return GuardDecision(None, (MeasurementValidity.DUPLICATE,))
            if measurement.time < last:
                self._count(MeasurementValidity.OUT_OF_ORDER)
                return GuardDecision(None, (MeasurementValidity.OUT_OF_ORDER,))
            gap = measurement.time - last
            if gap > self.stale_after_periods * self.measure_period:
                flags.append(MeasurementValidity.STALE)

        repaired, flag = sanitize_timeout_rate(
            measurement.timeout_rate, self.frame_rate
        )
        if flag is not None:
            flags.append(flag)
            measurement = replace(measurement, timeout_rate=repaired)

        self._last_time = measurement.time
        if not flags:
            flags = [MeasurementValidity.VALID]
        for f in flags:
            self._count(f)
        return GuardDecision(measurement, tuple(flags))

    def degraded_counts(self) -> Dict[str, int]:
        """Per-kind counters excluding the VALID bucket."""
        return {
            kind: n
            for kind, n in self.counts.items()
            if kind != MeasurementValidity.VALID.value and n > 0
        }
