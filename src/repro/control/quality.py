"""Adaptive capture quality: the §II-D knob, made closed-loop.

§II-D identifies the trade-off — lighter JPEG compression improves
accuracy but costs bytes per frame, shrinking how many frames fit over
the link before the deadline — and leaves it static.  This extension
(in the spirit of the paper's DeepDecision/OsmoticGate related work,
which adapt resolution/quality) closes a second, slower loop around
the FrameFeedback rate loop:

* if the system has been **rate-limited by the network** for a while
  (violations present, offload rate stuck well below ``F_s``), step
  the JPEG quality *down* one notch — smaller frames raise the link's
  frame capacity, trading a little accuracy for many more results;
* if offloading has been **saturated and clean** for a while, step
  quality *up* — spend the headroom on accuracy.

The quality loop runs an order of magnitude slower than the rate loop
(``dwell`` periods per step) so the two loops cannot fight: by the
time quality moves, the rate loop has settled around the previous
operating point.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.control.base import Controller, Measurement
from repro.control.framefeedback import FrameFeedbackController, FrameFeedbackSettings

#: default quality ladder, coarse enough that each step matters
DEFAULT_LADDER: Tuple[float, ...] = (50.0, 65.0, 80.0, 90.0)


class AdaptiveQualityController(Controller):
    """FrameFeedback rate control + a slow JPEG-quality outer loop."""

    name = "FrameFeedback+Q"
    wants_probe = False

    def __init__(
        self,
        frame_rate: float,
        settings: FrameFeedbackSettings = FrameFeedbackSettings(),
        ladder: Sequence[float] = DEFAULT_LADDER,
        start_index: int = None,  # type: ignore[assignment]
        dwell: int = 8,
        congested_po_frac: float = 0.6,
    ) -> None:
        if not ladder or list(ladder) != sorted(ladder):
            raise ValueError(f"quality ladder must be ascending, got {ladder}")
        if dwell < 1:
            raise ValueError(f"dwell must be >= 1, got {dwell}")
        if not 0.0 < congested_po_frac < 1.0:
            raise ValueError("congested P_o fraction must be in (0, 1)")
        self.inner = FrameFeedbackController(frame_rate, settings)
        self.frame_rate = frame_rate
        self.ladder = tuple(float(q) for q in ladder)
        self._index = len(self.ladder) - 1 if start_index is None else int(start_index)
        if not 0 <= self._index < len(self.ladder):
            raise ValueError(f"start index {self._index} outside ladder")
        self.dwell = dwell
        self.congested_po_frac = congested_po_frac
        self._congested_streak = 0
        self._clean_streak = 0

    # ------------------------------------------------------------------
    @property
    def capture_quality(self) -> float:
        """Read by the device after every update."""
        return self.ladder[self._index]

    @property
    def last_error(self) -> float:
        return self.inner.last_error

    def reset(self) -> None:
        self.inner.reset()
        self._index = len(self.ladder) - 1
        self._congested_streak = 0
        self._clean_streak = 0

    def initial_target(self, frame_rate: float) -> float:
        return self.inner.initial_target(frame_rate)

    # ------------------------------------------------------------------
    def update(self, measurement: Measurement) -> float:
        target = self.inner.update(measurement)

        congested = (
            measurement.timeout_rate > 0.0
            and target < self.congested_po_frac * self.frame_rate
        )
        clean_and_full = (
            measurement.timeout_rate_last == 0.0
            and measurement.timeout_rate <= 0.5
            and target >= 0.9 * self.frame_rate
        )

        # Leaky accumulators, not strict streaks: FrameFeedback's own
        # equilibrium makes T oscillate around the threshold, so a
        # congested link shows *intermittent* violations.  Evidence
        # accumulates on matching periods and drains (not resets) on
        # non-matching ones.
        self._congested_streak = (
            self._congested_streak + 1 if congested else max(self._congested_streak - 1, 0)
        )
        self._clean_streak = self._clean_streak + 1 if clean_and_full else 0

        if self._congested_streak >= self.dwell and self._index > 0:
            self._index -= 1
            self._congested_streak = 0
            self._clean_streak = 0
        elif self._clean_streak >= self.dwell and self._index < len(self.ladder) - 1:
            self._index += 1
            self._clean_streak = 0
            self._congested_streak = 0
        return target
