"""The FrameFeedback controller (§III, the paper's contribution).

Control law, verbatim from Eqs. 4–5 with ``SP = F_s``:

.. code-block:: text

    PV = P_o            if T == 0        e = F_s - P_o
    PV = T + 0.9 F_s    if T  > 0        e = 0.1 F_s - T

    u  = K_P e + K_D de/dt               (Eq. 3; K_I = 0)
    u  clamped to [-0.5 F_s, +0.1 F_s]   (Table IV update limits)
    P_o <- clamp(P_o + u, 0, F_s)

Design consequences the implementation preserves:

* ``e = 0`` at ``T = 0.1 F_s``, so under total offload failure ``P_o``
  settles at ``0.1 F_s`` — a standing probe of offload availability
  that costs nothing (those frames would have been skipped locally
  anyway, since ``P_l < F_s``) but makes recovery immediate;
* the asymmetric update clamp backs off up to 5x faster than it ramps
  up ("reacting more forcefully to timeouts", §III-B);
* the ``T`` input is the *windowed average* rate supplied by the
  device's measurement loop, which is the paper's argument for
  dropping the integral term.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.control.base import Controller, Measurement
from repro.control.pid import DiscretePid, PidGains
from repro.control.validity import MeasurementValidity, sanitize_timeout_rate


@dataclass(frozen=True)
class FrameFeedbackSettings:
    """Table IV, expressed as fractions of ``F_s`` where applicable."""

    kp: float = 0.2
    ki: float = 0.0
    kd: float = 0.26
    #: minimum update as a (negative) fraction of F_s
    update_min_frac: float = -0.5
    #: maximum update as a fraction of F_s
    update_max_frac: float = 0.1
    #: T threshold fraction: e(t)=0 at T = threshold_frac * F_s
    t_threshold_frac: float = 0.1
    #: controller period, seconds (Table IV "Measure Frequency 1")
    measure_period: float = 1.0

    def __post_init__(self) -> None:
        if self.update_min_frac > 0 or self.update_max_frac < 0:
            raise ValueError("update clamp must bracket zero")
        if not 0.0 < self.t_threshold_frac < 1.0:
            raise ValueError(
                f"threshold fraction must be in (0,1), got {self.t_threshold_frac}"
            )
        if self.measure_period <= 0:
            raise ValueError("measure period must be positive")


#: the paper's published settings (Table IV)
PAPER_SETTINGS = FrameFeedbackSettings()


class FrameFeedbackController(Controller):
    """Closed-loop offload-rate controller."""

    def __init__(
        self,
        frame_rate: float,
        settings: FrameFeedbackSettings = PAPER_SETTINGS,
        name: str = "FrameFeedback",
    ) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.frame_rate = frame_rate
        self.settings = settings
        self.name = name
        self._pid = DiscretePid(
            PidGains(kp=settings.kp, ki=settings.ki, kd=settings.kd),
            output_min=settings.update_min_frac * frame_rate,
            output_max=settings.update_max_frac * frame_rate,
        )
        self._target = self.initial_target(frame_rate)
        #: last computed error, exposed for traces/analysis
        self.last_error = 0.0
        #: last applied update, exposed for traces/analysis
        self.last_update = 0.0
        #: cumulative count of measurements whose ``timeout_rate`` had
        #: to be repaired (NaN / negative / > F_s); survives reset()
        #: deliberately — it is an observability counter, not state
        self.degraded_inputs = 0
        #: validity flag of the most recent update's input (None = clean)
        self.last_input_validity: Optional[MeasurementValidity] = None

    # ------------------------------------------------------------------
    def initial_target(self, frame_rate: float) -> float:
        """Start at zero offloading and let feedback ramp it up.

        This is what produces the visible ramp at the start of the
        paper's Fig 2/3 traces (slope capped at ``0.1 F_s`` per step).
        """
        return 0.0

    def reset(self) -> None:
        self._pid.reset()
        self._target = self.initial_target(self.frame_rate)
        self.last_error = 0.0
        self.last_update = 0.0

    @property
    def target(self) -> float:
        return self._target

    # ------------------------------------------------------------------
    def error(self, measurement: Measurement) -> float:
        """Piecewise error function (Eq. 5)."""
        fs = self.frame_rate
        t_rate = measurement.timeout_rate
        if t_rate <= 0.0:
            # No violations: drive P_o toward F_s.
            return fs - self._target
        # Violations: drive T toward the 10% threshold.
        return self.settings.t_threshold_frac * fs - t_rate

    def update(self, measurement: Measurement) -> float:
        # Harden the single input the law consumes: a NaN comparison is
        # False on both branches of error(), which used to route NaN
        # down the no-violation branch silently; a negative T inflated
        # the violation error.  Repair to [0, F_s] and count it.
        t_rate, flag = sanitize_timeout_rate(
            measurement.timeout_rate, self.frame_rate
        )
        self.last_input_validity = flag
        if flag is not None:
            self.degraded_inputs += 1
            measurement = replace(measurement, timeout_rate=t_rate)
        e = self.error(measurement)
        u = self._pid.step(e, self.settings.measure_period)
        self.last_error = e
        self.last_update = u
        self._target = min(max(self._target + u, 0.0), self.frame_rate)
        return self._target

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Checkpoint payload: ``P_o`` plus the PID's internal history.

        Everything a warm restart needs to resume mid-convergence —
        the integrator (zero under the paper's PD gains, kept for the
        K_I ablations) and the previous error the derivative term
        differences against.
        """
        return {
            "target": self._target,
            "pid": self._pid.snapshot(),
            "last_error": self.last_error,
            "last_update": self.last_update,
        }

    def restore_state(self, state: dict) -> None:
        self._target = min(max(float(state["target"]), 0.0), self.frame_rate)
        self._pid.restore(state["pid"])
        self.last_error = float(state["last_error"])
        self.last_update = float(state["last_update"])
