"""The paper's §IV-B baseline controllers.

1. **Local Inference** — never offload (low throughput, high power).
2. **Always Offload** — offload every frame, ignore all feedback.
3. **All-or-Nothing Intervals** — DeepDecision's [30] intuition, as the
   paper re-implements it: at each 1 s measurement step, send a
   heartbeat request; if it returned before the deadline, offload *all*
   frames next interval, otherwise classify locally.
"""

from __future__ import annotations

from repro.control.base import Controller, Measurement


class LocalOnlyController(Controller):
    """§IV-B.1: local execution only."""

    name = "LocalOnly"

    def update(self, measurement: Measurement) -> float:
        return 0.0


class FixedRateController(Controller):
    """Open-loop: offload at a constant rate, ignore all feedback.

    Not one of the paper's baselines; used by the characterization
    benches to trace out *where* the latency/violation cliff sits on a
    given link+server (the curve the closed loop has to discover).
    """

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = rate
        self.name = f"Fixed({rate:g})"

    def initial_target(self, frame_rate: float) -> float:
        return self.rate

    def update(self, measurement: Measurement) -> float:
        return self.rate


class AlwaysOffloadController(Controller):
    """§IV-B.2: offload all frames, at all times."""

    name = "AlwaysOffload"

    def initial_target(self, frame_rate: float) -> float:
        return frame_rate

    def update(self, measurement: Measurement) -> float:
        return measurement.frame_rate


class AllOrNothingController(Controller):
    """§IV-B.3: DeepDecision-style heartbeat-gated total offloading.

    The device sends one probe per measurement period (the harness does
    this whenever ``wants_probe`` is set); the decision for the next
    interval is simply the outcome of the latest settled probe.  Until
    a probe has settled, the controller stays conservative (local).
    """

    name = "AllOrNothing"
    wants_probe = True

    def __init__(self) -> None:
        self._offloading = False

    def reset(self) -> None:
        self._offloading = False

    @property
    def offloading(self) -> bool:
        return self._offloading

    def update(self, measurement: Measurement) -> float:
        if measurement.probe_ok is not None:
            self._offloading = measurement.probe_ok
        return measurement.frame_rate if self._offloading else 0.0
