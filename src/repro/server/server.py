"""The multi-tenant edge server (§II-A, §IV-A).

One service loop drains per-model :class:`AdaptiveBatcher` queues in
round-robin order and runs each batch on the single
:class:`GpuExecutor`.  Responses (completions *and* rejections) are
delivered through each request's ``respond`` callback at the instant
the server knows the outcome — rejections at batch formation,
completions at batch end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.models.latency import GpuBatchModel
from repro.models.zoo import ModelSpec, get_model
from repro.server.batching import AdaptiveBatcher, BatchPolicy, DEFAULT_BATCH_LIMIT
from repro.server.gpu import GpuExecutor
from repro.server.requests import InferenceRequest, RequestOutcome, Response
from repro.sim.core import Environment
from repro.sim.events import Event


@dataclass
class ServerStats:
    """Aggregate counters, also broken out per tenant."""

    received: int = 0
    completed: int = 0
    rejected: int = 0
    #: requests shed with explicit overload pushback (pushback servers
    #: only; plain rejections stay in ``rejected``)
    overloaded: int = 0
    #: queued/in-flight requests lost to a :meth:`EdgeServer.crash`
    #: (never answered — the devices' watchdogs observe silence)
    dropped_on_crash: int = 0
    per_tenant_received: Dict[str, int] = field(default_factory=dict)
    per_tenant_completed: Dict[str, int] = field(default_factory=dict)
    per_tenant_rejected: Dict[str, int] = field(default_factory=dict)
    per_tenant_overloaded: Dict[str, int] = field(default_factory=dict)

    def _bump(self, table: Dict[str, int], tenant: str) -> None:
        table[tenant] = table.get(tenant, 0) + 1


class EdgeServer:
    """GPU-equipped edge server shared by many devices."""

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        cost_model: Optional[GpuBatchModel] = None,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        batch_policy: BatchPolicy = BatchPolicy.FIFO,
        name: str = "edge-server",
        pushback: bool = False,
        admission_limit: Optional[int] = None,
        trace_identity: bool = False,
    ) -> None:
        """``pushback`` turns on explicit overload signalling.

        With pushback enabled (the paper's server sends bare
        rejections, so the default is off):

        * batch-formation overflow is answered ``OVERLOADED`` with a
          retry-after hint (time until the batch about to run
          completes) instead of a bare ``REJECTED``;
        * the admission path sheds at *submit* once a model's queue
          holds ``admission_limit`` requests (default ``4 *
          batch_limit``) — a fast-fail that replaces up to 250 ms of
          silence per doomed frame with an immediate, classified
          answer whose hint accounts for any remaining pause.
        """
        if admission_limit is not None and admission_limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {admission_limit}")
        self.env = env
        self.name = name
        #: stamp this server's name on trace spans (fleet runs, where
        #: "which host served this frame" matters; single-server runs
        #: leave it off so existing goldens stay byte-stable)
        self.trace_identity = trace_identity
        self.gpu = GpuExecutor(env, rng, cost_model)
        self.batch_limit = batch_limit
        self.batch_policy = batch_policy
        self.pushback = pushback
        self.admission_limit = (
            admission_limit
            if admission_limit is not None
            else (4 * batch_limit if pushback else None)
        )
        self.stats = ServerStats()
        self._batchers: Dict[str, AdaptiveBatcher] = {}
        self._models: Dict[str, ModelSpec] = {}
        self._wakeup: Optional[Event] = None
        self._paused_until = 0.0
        self._service_proc = env.process(self._service_loop(), name=f"{name}:service")

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Accept a request (called at its network-arrival instant)."""
        tracer = self.env.tracer
        if not self._service_proc.is_alive:
            # Crashed host: the packet lands on a dead box.  No answer
            # of any kind — the device's deadline watchdog observes the
            # same silence a real connection-refused-into-timeout does.
            self.stats.dropped_on_crash += 1
            if tracer is not None:
                tracer.server_dead(
                    request, self.env.now,
                    server=self.name if self.trace_identity else None,
                )
            return
        request.arrived_at = self.env.now
        if tracer is not None:
            tracer.server_submit(
                request, self.env.now,
                server=self.name if self.trace_identity else None,
            )
        self.stats.received += 1
        self.stats._bump(self.stats.per_tenant_received, request.tenant)
        batcher = self._batchers.get(request.model_name)
        if batcher is None:
            batcher = AdaptiveBatcher(self.batch_limit, self.batch_policy)
            self._batchers[request.model_name] = batcher
            self._models[request.model_name] = get_model(request.model_name)
        if (
            self.pushback
            and self.admission_limit is not None
            and batcher.pending >= self.admission_limit
        ):
            self._respond(
                request,
                RequestOutcome.OVERLOADED,
                batch_size=0,
                retry_after=self._retry_after_hint(request.model_name, batcher.pending),
            )
            return
        batcher.enqueue(request)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def absorb_fluid(
        self, tenant: str, frames: int, gpu_seconds: float, batches: int
    ) -> None:
        """Credit requests served analytically by a fluid window.

        Windows only open when the server is alive, unpaused, and
        comfortably below saturation, so every absorbed request is
        received and completed; GPU busy time is the steady-state
        amortized cost of the absorbed frames.
        """
        self.stats.received += frames
        self.stats.completed += frames
        per = self.stats.per_tenant_received
        per[tenant] = per.get(tenant, 0) + frames
        per = self.stats.per_tenant_completed
        per[tenant] = per.get(tenant, 0) + frames
        self.gpu.busy_seconds += gpu_seconds
        self.gpu.frames_run += frames
        self.gpu.batches_run += batches

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def pause(self, duration: float) -> None:
        """Stall the service loop for ``duration`` seconds.

        Models §II-A.3's "limited offloading availability" in its
        bluntest form: the GPU stops draining (driver hiccup, victim of
        a co-located job, restart).  Requests keep *arriving* and
        accumulate in the batchers; on resume, batch formation rejects
        the overflow — exactly the rejection burst a real stall causes.
        """
        if duration < 0:
            raise ValueError(f"negative pause duration {duration}")
        self._paused_until = max(self._paused_until, self.env.now + duration)
        # wake the loop so it notices the pause boundary precisely
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    @property
    def paused(self) -> bool:
        return self.env.now < self._paused_until

    @property
    def service_alive(self) -> bool:
        """True while the service loop process is running."""
        return self._service_proc.is_alive

    def crash(self) -> int:
        """Kill the service loop and lose every queued request.

        Harsher than :meth:`pause`: a paused server resumes with its
        queue intact (and rejects the overflow), a crashed one loses
        the queue outright and answers *nothing* until
        :meth:`restart` — including the batch that was on the GPU.
        Returns the number of requests dropped.
        """
        if self._service_proc.is_alive:
            self._service_proc.kill()
        self._wakeup = None
        dropped = sum(b.pending for b in self._batchers.values())
        self.stats.dropped_on_crash += dropped
        self._batchers = {}
        return dropped

    def restart(self) -> None:
        """Respawn the service loop on an empty queue (cold cache)."""
        if self._service_proc.is_alive:
            return
        self._paused_until = 0.0
        self._service_proc = self.env.process(
            self._service_loop(), name=f"{self.name}:service"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def queue_depth(self, model_name: Optional[str] = None) -> int:
        if model_name is not None:
            batcher = self._batchers.get(model_name)
            return batcher.pending if batcher else 0
        return sum(b.pending for b in self._batchers.values())

    # ------------------------------------------------------------------
    # service loop
    # ------------------------------------------------------------------
    def _service_loop(self):
        env = self.env
        while True:
            if env.now < self._paused_until:
                yield env.sleep(self._paused_until - env.now)
                continue
            ran_any = False
            # Round-robin across models with pending work; each model
            # gets one batch per sweep so a heavy model cannot starve
            # a light one (§IV-C.2: "we hit both model types").
            for model_name in list(self._batchers):
                batcher = self._batchers[model_name]
                if not batcher.pending:
                    continue
                ran_any = True
                batch, rejected = batcher.form_batch(now=env.now)
                now = env.now
                spec = self._models[model_name]
                if self.pushback:
                    # The batch we are about to run bounds how long the
                    # shed requests would have waited for the next slot.
                    hint = (
                        self.gpu.cost_model.batch_latency(spec, len(batch))
                        * self.gpu.slowdown
                        if batch
                        else 0.0
                    )
                    for req in rejected:
                        if AdaptiveBatcher.expired(req, now):
                            self._respond(req, RequestOutcome.REJECTED, batch_size=0)
                        else:
                            self._respond(
                                req,
                                RequestOutcome.OVERLOADED,
                                batch_size=0,
                                retry_after=hint,
                            )
                else:
                    for req in rejected:
                        self._respond(req, RequestOutcome.REJECTED, batch_size=0)
                yield from self.gpu.execute(spec, len(batch))
                for req in batch:
                    self._respond(req, RequestOutcome.COMPLETED, batch_size=len(batch))
            if not ran_any:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None

    def _retry_after_hint(self, model_name: str, pending: int) -> float:
        """Seconds until the server could plausibly serve one more request.

        Admission-shed hint: any remaining pause, plus the number of
        full batches ahead of the newcomer times the cost of one full
        batch at the current GPU speed.
        """
        spec = self._models[model_name]
        pause_left = max(0.0, self._paused_until - self.env.now)
        batches_ahead = -(-(pending + 1) // self.batch_limit)  # ceil div
        per_batch = (
            self.gpu.cost_model.batch_latency(spec, self.batch_limit)
            * self.gpu.slowdown
        )
        return pause_left + batches_ahead * per_batch

    def _respond(
        self,
        req: InferenceRequest,
        outcome: RequestOutcome,
        batch_size: int,
        retry_after: Optional[float] = None,
    ) -> None:
        now = self.env.now
        if outcome is RequestOutcome.COMPLETED:
            self.stats.completed += 1
            self.stats._bump(self.stats.per_tenant_completed, req.tenant)
        elif outcome is RequestOutcome.OVERLOADED:
            self.stats.overloaded += 1
            self.stats._bump(self.stats.per_tenant_overloaded, req.tenant)
        else:
            self.stats.rejected += 1
            self.stats._bump(self.stats.per_tenant_rejected, req.tenant)
        arrived = req.arrived_at if req.arrived_at is not None else now
        response = Response(
            request_id=req.request_id,
            frame_id=req.frame_id,
            tenant=req.tenant,
            outcome=outcome,
            completed_at=now,
            batch_size=batch_size,
            queue_wait=max(0.0, now - arrived),
            arrived_at=arrived,
            label=req.request_id % 1000,
            retry_after=retry_after,
        )
        tracer = self.env.tracer
        if tracer is not None:
            tracer.server_respond(
                req, now, outcome.value, batch_size=batch_size
            )
        req.respond(response)
