"""Adaptive batching (§IV-A).

    "Our batching scheme can be simple: construct a batch using all
    frames (to a limit) that arrived while executing the previous
    batch.  We maintain a request queue that is filled during the
    execution of a batch, and we fill the next batch with the contents
    of this queue.  [...] we impose a limit of 15 frames for each
    batch, while rejecting the rest in the queue."

So batch formation is: drain the queue; keep up to ``batch_limit``;
*reject* the remainder immediately.  :class:`BatchPolicy` selects who
survives when the queue overflows:

* ``FIFO`` (the paper's scheme): oldest ``batch_limit`` requests win.
* ``FAIR``: round-robin across tenants, so one aggressive tenant
  cannot starve the rest — the behaviour §II-A.3 asks for ("the system
  should respond by ... distributing the available capacity fairly
  among clients").  Used by the fairness ablation bench.
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from typing import Deque, List, Optional, Tuple

from repro.server.requests import InferenceRequest

#: the paper's per-batch frame cap
DEFAULT_BATCH_LIMIT = 15


class BatchPolicy(enum.Enum):
    FIFO = "fifo"
    FAIR = "fair"
    #: FIFO, but requests whose ``deadline_at`` has already passed are
    #: shed at batch formation — a doomed frame in the batch wastes GPU
    #: time and, worse, displaces a frame that could still make it
    DEADLINE_AWARE = "deadline_aware"


class AdaptiveBatcher:
    """Per-model request queue with the paper's batch-formation rule."""

    def __init__(
        self,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        policy: BatchPolicy = BatchPolicy.FIFO,
    ) -> None:
        if batch_limit < 1:
            raise ValueError(f"batch limit must be >= 1, got {batch_limit}")
        self.batch_limit = batch_limit
        self.policy = policy
        self._queue: Deque[InferenceRequest] = deque()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def enqueue(self, request: InferenceRequest) -> None:
        """Add a request to the accumulating queue."""
        self._queue.append(request)

    @staticmethod
    def expired(request: InferenceRequest, now: Optional[float]) -> bool:
        """True when the request's deadline hint has already passed.

        Shared by ``DEADLINE_AWARE`` batch formation and the server's
        overload-pushback classification (an expired request is the
        *client's* loss, not a server-saturation signal, so pushback
        must not label it ``OVERLOADED``).
        """
        return (
            now is not None
            and request.deadline_at is not None
            and request.deadline_at <= now
        )

    def form_batch(
        self, now: Optional[float] = None
    ) -> Tuple[List[InferenceRequest], List[InferenceRequest]]:
        """Drain the queue into ``(batch, rejected)``.

        The queue is emptied: everything not in the batch is rejected,
        exactly as §IV-A prescribes.  Under ``DEADLINE_AWARE`` (and
        given ``now``), requests whose ``deadline_at`` has already
        passed are shed into the rejected set before the cap applies.
        """
        drained = list(self._queue)
        self._queue.clear()

        expired: List[InferenceRequest] = []
        if self.policy is BatchPolicy.DEADLINE_AWARE and now is not None:
            alive = []
            for req in drained:
                if self.expired(req, now):
                    expired.append(req)
                else:
                    alive.append(req)
            drained = alive

        if len(drained) <= self.batch_limit:
            return drained, expired
        if self.policy is BatchPolicy.FAIR:
            batch, rejected = self._fair_select(drained)
        else:
            batch, rejected = drained[: self.batch_limit], drained[self.batch_limit :]
        return batch, expired + rejected

    # ------------------------------------------------------------------
    def _fair_select(
        self, drained: List[InferenceRequest]
    ) -> Tuple[List[InferenceRequest], List[InferenceRequest]]:
        """Round-robin across tenants, FIFO within a tenant."""
        per_tenant: "OrderedDict[str, Deque[InferenceRequest]]" = OrderedDict()
        for req in drained:
            per_tenant.setdefault(req.tenant, deque()).append(req)
        batch: List[InferenceRequest] = []
        while len(batch) < self.batch_limit and per_tenant:
            for tenant in list(per_tenant):
                queue = per_tenant[tenant]
                batch.append(queue.popleft())
                if not queue:
                    del per_tenant[tenant]
                if len(batch) == self.batch_limit:
                    break
        rejected = [req for queue in per_tenant.values() for req in queue]
        # preserve arrival order among the rejected for deterministic stats
        rejected.sort(key=lambda r: r.request_id)
        return batch, rejected
