"""Request/response records exchanged between devices and the server."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

_request_ids = itertools.count()


class RequestOutcome(enum.Enum):
    """Terminal states of an offload request, as the server saw it."""

    COMPLETED = "completed"
    REJECTED = "rejected"  # dropped at batch formation (queue overflow)
    #: shed by the admission path because the server is saturated.
    #: Distinguishable from REJECTED so the device can tell "server
    #: overloaded, back off" from "network dead, probe"; carries a
    #: ``retry_after`` hint.  Only emitted when the server is built
    #: with ``pushback=True`` (the paper's server sends bare
    #: rejections).
    OVERLOADED = "overloaded"


@dataclass
class InferenceRequest:
    """One frame's inference request as it arrives at the server.

    ``respond`` is invoked exactly once, at the server-side completion
    (or rejection) instant, with the :class:`Response`.  For offloading
    devices the callback pushes the response onto the downlink; for
    background tenants it just counts.
    """

    tenant: str
    model_name: str
    sent_at: float
    payload_bytes: int
    respond: Callable[["Response"], None]
    frame_id: int = -1
    #: which transmission of the frame this is (0 = original send,
    #: 1.. = hedged/deferred retries); lets per-frame traces tell a
    #: retransmission's uplink trip from the original's
    attempt: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    arrived_at: Optional[float] = None
    #: optional absolute deadline hint (client clock).  The paper's
    #: system does not ship one; the DEADLINE_AWARE batch policy uses
    #: it to shed frames that are already doomed instead of spending
    #: GPU time producing answers nobody can use.
    deadline_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"negative payload {self.payload_bytes}")


@dataclass(frozen=True)
class Response:
    """The server's answer to one request."""

    request_id: int
    frame_id: int
    tenant: str
    outcome: RequestOutcome
    completed_at: float
    batch_size: int = 0
    queue_wait: float = 0.0
    #: when the request reached the server (for latency attribution)
    arrived_at: float = 0.0
    #: classification result placeholder (label index); carries no
    #: semantics in the simulation but keeps the wire format honest
    label: int = 0
    #: overload pushback hint: seconds the client should wait before
    #: re-sending (None for every non-OVERLOADED outcome)
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.outcome is RequestOutcome.COMPLETED

    @property
    def overloaded(self) -> bool:
        return self.outcome is RequestOutcome.OVERLOADED
