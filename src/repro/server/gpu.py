"""The GPU executor: serial batch execution with the affine cost model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.latency import GpuBatchModel
from repro.models.zoo import ModelSpec
from repro.sim.core import Environment


class GpuExecutor:
    """One GPU executing inference batches serially.

    The executor is deliberately *not* a shared Resource: the server's
    single service loop owns it, matching the paper's design where one
    process drains the request queue batch by batch.  Utilization
    accounting is kept so experiments can report GPU busy fraction.
    """

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        cost_model: Optional[GpuBatchModel] = None,
    ) -> None:
        self.env = env
        self.rng = rng
        self.cost_model = cost_model or GpuBatchModel()
        self.busy_seconds = 0.0
        self.batches_run = 0
        self.frames_run = 0
        #: latency multiplier driven by fault injection (1.0 = healthy)
        self.slowdown = 1.0

    def set_slowdown(self, factor: float) -> None:
        """Stretch every batch by ``factor`` (contention / throttling).

        Takes effect from the next batch; the batch currently on the
        GPU keeps its already-sampled duration, like a real preempting
        co-tenant arriving mid-kernel.
        """
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self.slowdown = float(factor)

    def execute(self, model: ModelSpec, batch_size: int):
        """Process generator: occupy the GPU for one batch.

        Usage (from the server's service loop)::

            yield from gpu.execute(model_spec, len(batch))
        """
        duration = self.cost_model.sample(model, batch_size, self.rng) * self.slowdown
        yield self.env.sleep(duration)
        self.busy_seconds += duration
        self.batches_run += 1
        self.frames_run += batch_size

    def utilization(self, elapsed: float) -> float:
        """GPU busy fraction over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed)
