"""Reservation broker: an ATOMS-flavoured admission baseline (§V-B).

ATOMS [23] coordinates multi-tenant offloading with reservations,
planning and clock sync; the paper argues that machinery is heavyweight
and blind to network variability.  To make that argument measurable,
this module implements the reservation *idea* at its most favourable:

* clients ask the broker for an offloading rate each period;
* the broker measures unreserved (background) demand at the server,
  computes remaining capacity against the GPU's mixed-workload
  saturation rate, and grants equal shares capped by each ask;
* grants are authoritative — a reserving client offloads exactly its
  grant and never probes.

The broker sees server load perfectly (better than real ATOMS, which
must predict it) but — like ATOMS — knows nothing about each client's
network path.  ``benchmarks/bench_controllers.py`` shows the
consequence: reservation matches FrameFeedback under pure server load
and falls apart under network degradation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.models.latency import GpuBatchModel
from repro.server.server import EdgeServer
from repro.sim.core import Environment


class ReservationBroker:
    """Server-side rate-reservation service."""

    def __init__(
        self,
        env: Environment,
        server: EdgeServer,
        gpu_model: Optional[GpuBatchModel] = None,
        utilization_target: float = 0.85,
        measure_period: float = 1.0,
    ) -> None:
        if not 0.0 < utilization_target <= 1.0:
            raise ValueError(
                f"utilization target must be in (0, 1], got {utilization_target}"
            )
        if measure_period <= 0:
            raise ValueError("measure period must be positive")
        self.env = env
        self.server = server
        self.gpu = gpu_model or GpuBatchModel()
        self.utilization_target = utilization_target
        self.measure_period = measure_period
        self._asks: Dict[str, float] = {}
        self._background_rate = 0.0
        self._prev_counts: Dict[str, int] = {}
        env.process(self._measure_loop(), name="reservation-broker")

    # ------------------------------------------------------------------
    @property
    def background_rate(self) -> float:
        """Most recent unreserved request rate (req/s)."""
        return self._background_rate

    def capacity(self) -> float:
        """Usable server capacity for the current workload mix."""
        from repro.control.oracle import mixed_server_capacity

        return self.utilization_target * mixed_server_capacity(
            self.gpu, background_active=self._background_rate > 0
        )

    def request(self, tenant: str, rate: float) -> float:
        """Ask for ``rate``; returns the granted rate (frames/s).

        Grants are equal shares of the remaining capacity, capped by
        each tenant's ask (max-min fairness over one round).
        """
        if rate < 0:
            raise ValueError(f"negative ask {rate}")
        self._asks[tenant] = rate
        available = max(0.0, self.capacity() - self._background_rate)
        # max-min: everyone gets min(ask, fair share of what's left)
        remaining = available
        pending = dict(self._asks)
        grants: Dict[str, float] = {}
        while pending and remaining > 1e-9:
            share = remaining / len(pending)
            satisfied = {t: ask for t, ask in pending.items() if ask <= share}
            if not satisfied:
                for t in pending:
                    grants[t] = share
                remaining = 0.0
                break
            for t, ask in satisfied.items():
                grants[t] = ask
                remaining -= ask
                del pending[t]
        for t in pending:
            grants.setdefault(t, 0.0)
        return grants.get(tenant, 0.0)

    def release(self, tenant: str) -> None:
        """Drop a tenant's standing ask."""
        self._asks.pop(tenant, None)

    # ------------------------------------------------------------------
    def _measure_loop(self):
        env = self.env
        while True:
            yield env.sleep(self.measure_period)
            counts = dict(self.server.stats.per_tenant_received)
            delta = 0.0
            for tenant, total in counts.items():
                if tenant in self._asks:
                    continue  # reserved traffic is accounted separately
                delta += total - self._prev_counts.get(tenant, 0)
            self._prev_counts = counts
            self._background_rate = delta / self.measure_period
