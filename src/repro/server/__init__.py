"""Edge-server substrate: multi-tenant GPU inference with adaptive batching.

Implements §IV-A of the paper: the server keeps a request queue per
model that fills *while the previous batch executes*; the next batch is
formed from that queue up to a 15-frame cap, and the remainder of the
queue is **rejected** (not delayed).  A single GPU executes batches
serially with an affine batch-latency model; multi-tenancy is simply
many clients feeding the same queues, which is what makes server load
(`T_l`) a distinct timeout source from networking (`T_n`).
"""

from repro.server.batching import AdaptiveBatcher, BatchPolicy
from repro.server.gpu import GpuExecutor
from repro.server.requests import InferenceRequest, RequestOutcome, Response
from repro.server.server import EdgeServer, ServerStats

__all__ = [
    "AdaptiveBatcher",
    "BatchPolicy",
    "EdgeServer",
    "GpuExecutor",
    "InferenceRequest",
    "RequestOutcome",
    "Response",
    "ServerStats",
]
