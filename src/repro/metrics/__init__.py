"""Measurement substrate: counters, time series, QoS summaries.

The FrameFeedback controller consumes *windowed rates* (its input is
"the average of T from the last few seconds", §III-A.1); experiments
consume *time series* of per-second rates; EXPERIMENTS.md consumes
*QoS summaries*.  Each has a dedicated module here.
"""

from repro.metrics.breakdown import BreakdownCollector, LatencySample, TimeoutCause
from repro.metrics.counters import EventCounter, WindowedRate
from repro.metrics.qos import PhaseSummary, QosReport, fleet_extras, summarize_phases
from repro.metrics.streaming import StreamingHistogram
from repro.metrics.taxonomy import FailureKind, FailureTaxonomy
from repro.metrics.timeseries import TimeSeries
from repro.metrics.tracestats import span_duration_stats, trace_latency_summary

__all__ = [
    "BreakdownCollector",
    "EventCounter",
    "FailureKind",
    "FailureTaxonomy",
    "LatencySample",
    "PhaseSummary",
    "QosReport",
    "StreamingHistogram",
    "TimeoutCause",
    "TimeSeries",
    "WindowedRate",
    "fleet_extras",
    "span_duration_stats",
    "summarize_phases",
    "trace_latency_summary",
]
