"""End-to-end latency breakdown and timeout attribution (Table I's
``T_n`` vs ``T_l``).

The paper's central design argument is that the *device* cannot — and
need not — distinguish network-induced timeouts (``T_n``) from
load-induced ones (``T_l``); FrameFeedback reacts to their sum.  The
experiment harness, however, *can* attribute them, and the paper's
Table I names both.  This module provides that attribution from the
information flowing back to the device plus the watchdog outcome:

* a frame that produced **no response at all** by its deadline was lost
  or delayed in the network → ``T_n``;
* a frame the server **rejected** at batch formation → ``T_l``
  (§II-A.3 explicitly folds rejections into the load-induced rate);
* a frame that **completed but arrived late** is attributed to the
  component that consumed the largest share of its end-to-end time
  (network = uplink + downlink transit, server = queue wait + batch
  execution).

It also aggregates per-component latency statistics (mean/p50/p95) for
successful offloads, which the breakdown bench reports per phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

import numpy as np


class TimeoutCause(enum.Enum):
    """Which subsystem a violated deadline is attributed to."""

    NETWORK = "network"  # T_n
    LOAD = "load"  # T_l


@dataclass(frozen=True)
class LatencySample:
    """Component times of one offloaded frame that returned."""

    sent_at: float
    #: uplink transit: send -> server ingress
    uplink: float
    #: server residency: ingress -> response emission (queue + batch)
    server: float
    #: downlink transit: response emission -> arrival at device
    downlink: float
    #: whether the frame met its deadline
    ok: bool

    @property
    def total(self) -> float:
        return self.uplink + self.server + self.downlink

    def dominant_component(self) -> TimeoutCause:
        """The larger contributor: network (up+down) vs server."""
        network = self.uplink + self.downlink
        return TimeoutCause.NETWORK if network >= self.server else TimeoutCause.LOAD


@dataclass
class ComponentStats:
    """Summary statistics of one latency component."""

    mean: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def from_samples(cls, values: List[float]) -> "ComponentStats":
        if not values:
            return cls(float("nan"), float("nan"), float("nan"), float("nan"))
        arr = np.asarray(values)
        return cls(
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            maximum=float(arr.max()),
        )


class BreakdownCollector:
    """Accumulates latency samples and timeout attributions."""

    def __init__(self) -> None:
        self.samples: List[LatencySample] = []
        #: (time, cause) of every attributed violation
        self.violations: List[tuple] = []

    # ------------------------------------------------------------------
    def record_response(self, sample: LatencySample, at: float) -> None:
        """A frame returned (possibly late)."""
        self.samples.append(sample)
        if not sample.ok:
            self.violations.append((at, sample.dominant_component()))

    def record_silent_timeout(self, at: float) -> None:
        """A frame's deadline passed with no response: network loss."""
        self.violations.append((at, TimeoutCause.NETWORK))

    def record_rejection(self, at: float) -> None:
        """The server rejected the frame: load-induced (§II-A.3)."""
        self.violations.append((at, TimeoutCause.LOAD))

    # ------------------------------------------------------------------
    def cause_counts(
        self, t0: float = float("-inf"), t1: float = float("inf")
    ) -> Dict[TimeoutCause, int]:
        """Violations by cause within ``[t0, t1)``."""
        counts = {TimeoutCause.NETWORK: 0, TimeoutCause.LOAD: 0}
        for at, cause in self.violations:
            if t0 <= at < t1:
                counts[cause] += 1
        return counts

    def cause_rates(self, t0: float, t1: float) -> Dict[str, float]:
        """``{"T_n": per-second, "T_l": per-second}`` over ``[t0, t1)``."""
        if t1 <= t0:
            raise ValueError(f"empty interval [{t0}, {t1})")
        counts = self.cause_counts(t0, t1)
        span = t1 - t0
        return {
            "T_n": counts[TimeoutCause.NETWORK] / span,
            "T_l": counts[TimeoutCause.LOAD] / span,
        }

    def component_stats(self, ok_only: bool = True) -> Dict[str, ComponentStats]:
        """Per-component latency statistics."""
        rows = [s for s in self.samples if s.ok] if ok_only else self.samples
        return {
            "uplink": ComponentStats.from_samples([s.uplink for s in rows]),
            "server": ComponentStats.from_samples([s.server for s in rows]),
            "downlink": ComponentStats.from_samples([s.downlink for s in rows]),
            "total": ComponentStats.from_samples([s.total for s in rows]),
        }

    @property
    def total_violations(self) -> int:
        return len(self.violations)
