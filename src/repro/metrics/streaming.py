"""Streaming (bounded-memory) latency statistics.

The device currently buffers each bucket's RTT samples and summarizes
at close — fine at 30 fps, but a deployment aggregating many streams
(or a long-running fleet study) wants O(1)-memory percentile tracking.
:class:`StreamingHistogram` bins samples into geometric buckets over a
configured range (the HDR-histogram idea, sized for latencies):
inserts are O(1), quantile queries are O(bins), and relative error is
bounded by the per-bucket growth factor.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np


class StreamingHistogram:
    """Geometric-bucket histogram with bounded relative error."""

    def __init__(
        self,
        min_value: float = 1e-4,
        max_value: float = 10.0,
        growth: float = 1.05,
    ) -> None:
        """
        Args:
            min_value: values at/below this land in the first bucket.
            max_value: values at/above this land in the last bucket.
            growth: per-bucket geometric factor; the relative quantile
                error is at most ``growth - 1`` (~5 % by default).
        """
        if not 0 < min_value < max_value:
            raise ValueError("need 0 < min_value < max_value")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.min_value = min_value
        self.max_value = max_value
        self.growth = growth
        self._log_growth = math.log(growth)
        n_bins = int(math.ceil(math.log(max_value / min_value) / self._log_growth)) + 2
        self._counts = np.zeros(n_bins, dtype=np.int64)
        self.count = 0
        self._sum = 0.0

    # ------------------------------------------------------------------
    def _bin_index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        if value >= self.max_value:
            return len(self._counts) - 1
        return 1 + int(math.log(value / self.min_value) / self._log_growth)

    def _bin_value(self, index: int) -> float:
        """Representative (geometric-mid) value of a bucket."""
        if index == 0:
            return self.min_value
        if index >= len(self._counts) - 1:
            return self.max_value
        lo = self.min_value * self.growth ** (index - 1)
        return lo * math.sqrt(self.growth)

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        if value < 0 or not math.isfinite(value):
            raise ValueError(f"values must be finite and >= 0, got {value}")
        self._counts[self._bin_index(value)] += 1
        self.count += 1
        self._sum += value

    def record_many(self, values: Sequence[float]) -> None:
        for v in values:
            self.record(v)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean (tracked outside the buckets)."""
        if self.count == 0:
            return float("nan")
        return self._sum / self.count

    def quantile(self, q: float) -> float:
        """Approximate quantile (relative error <= growth - 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * (self.count - 1)
        cumulative = 0
        for i, c in enumerate(self._counts):
            cumulative += int(c)
            if cumulative > rank:
                return self._bin_value(i)
        return self.max_value  # pragma: no cover - defensive

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    def fraction_above(self, threshold: float) -> float:
        """Fraction of recorded values above ``threshold`` (approx.)."""
        if self.count == 0:
            return 0.0
        idx = self._bin_index(threshold)
        return float(self._counts[idx + 1 :].sum()) / self.count

    def merge(self, other: "StreamingHistogram") -> None:
        """Absorb another histogram with identical binning."""
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other.growth != self.growth
        ):
            raise ValueError("histograms have different binning")
        self._counts += other._counts
        self.count += other.count
        self._sum += other._sum

    @property
    def memory_bins(self) -> int:
        return len(self._counts)
