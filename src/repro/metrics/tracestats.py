"""Per-frame latency attribution computed from trace documents.

The tracer (``repro.trace``) records *causality*; this module turns a
canonical trace document back into the paper's quantity of interest —
where each frame's end-to-end time went (§IV): local inference vs.
uplink serialization vs. server batching/GPU vs. the response trip.
Works on any document produced by ``trace_document``/``load_trace``,
so it applies equally to a live run and to a committed golden.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

__all__ = ["span_duration_stats", "trace_latency_summary"]


def _collect(span: Dict[str, Any], out: Dict[str, list]) -> None:
    for child in span.get("children", ()):
        out.setdefault(child["name"], []).append(child["end"] - child["start"])
        _collect(child, out)


def span_duration_stats(doc: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Duration statistics per span name, across every frame.

    Returns ``{name: {count, total, mean, p95, max}}`` (seconds) for
    each non-root span name appearing anywhere in the document, sorted
    by total time spent — i.e. by how much of the run's latency that
    stage accounts for.
    """
    durations: Dict[str, list] = {}
    for frame in doc["frames"]:
        _collect(frame["span"], durations)
    stats = {}
    for name, values in durations.items():
        arr = np.asarray(values, dtype=float)
        stats[name] = {
            "count": int(arr.size),
            "total": float(arr.sum()),
            "mean": float(arr.mean()),
            "p95": float(np.percentile(arr, 95.0)),
            "max": float(arr.max()),
        }
    return dict(
        sorted(stats.items(), key=lambda item: item[1]["total"], reverse=True)
    )


def trace_latency_summary(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Roll a trace document up into the per-frame latency picture.

    ``frames``/``terminal`` mirror ``repro.trace.terminal_counts``;
    ``spans`` is :func:`span_duration_stats`; ``frame_seconds`` are
    root-span (capture -> settled) duration statistics for the frames
    that completed, the quantity Fig. 4 plots distributions of.
    """
    from repro.trace import terminal_counts

    completed = [
        frame["span"]["end"] - frame["span"]["start"]
        for frame in doc["frames"]
        if frame["span"]["status"] in ("completed-local", "completed-offload")
    ]
    arr = np.asarray(completed, dtype=float)
    return {
        "frames": len(doc["frames"]),
        "terminal": terminal_counts(doc),
        "spans": span_duration_stats(doc),
        "frame_seconds": {
            "count": int(arr.size),
            "mean": float(arr.mean()) if arr.size else 0.0,
            "p95": float(np.percentile(arr, 95.0)) if arr.size else 0.0,
            "max": float(arr.max()) if arr.size else 0.0,
        },
    }
