"""QoS summaries: the quantities EXPERIMENTS.md reports per phase.

The paper's headline QoS metric is the successful inference throughput
``P`` (frames/s meeting the deadline) and the deadline-violation rate
``T`` (§I contribution 2).  :func:`summarize_phases` cuts throughput
series on schedule boundaries and reports per-phase means so the
"who wins by what factor in which regime" comparison is mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.metrics.timeseries import TimeSeries


@dataclass(frozen=True)
class PhaseSummary:
    """Mean throughput per controller within one schedule phase."""

    start: float
    end: float
    label: str
    mean_throughput: Dict[str, float]

    def winner(self) -> str:
        """Controller with the highest mean throughput this phase."""
        return max(self.mean_throughput, key=lambda k: self.mean_throughput[k])

    def advantage_over(self, name: str, baseline: str) -> float:
        """Throughput ratio of ``name`` over ``baseline`` (inf if 0)."""
        base = self.mean_throughput[baseline]
        top = self.mean_throughput[name]
        if base <= 0:
            return float("inf") if top > 0 else 1.0
        return top / base


def summarize_phases(
    throughput: Dict[str, TimeSeries],
    boundaries: Sequence[float],
    end: float,
    labels: Sequence[str] = (),
) -> List[PhaseSummary]:
    """Cut per-controller throughput series on phase boundaries.

    Args:
        throughput: controller name -> per-second throughput series.
        boundaries: phase start times (must begin with 0).
        end: end of the experiment.
        labels: optional phase labels (defaults to time ranges).
    """
    bounds = list(boundaries) + [end]
    out: List[PhaseSummary] = []
    for i in range(len(bounds) - 1):
        t0, t1 = bounds[i], bounds[i + 1]
        if t1 <= t0:
            continue
        label = labels[i] if i < len(labels) else f"{t0:g}-{t1:g}s"
        means = {
            name: float(np.nan_to_num(series.mean_over(t0, t1)))
            for name, series in throughput.items()
        }
        out.append(PhaseSummary(start=t0, end=t1, label=label, mean_throughput=means))
    return out


@dataclass
class QosReport:
    """Whole-run QoS rollup for one controller."""

    name: str
    total_frames: int = 0
    successful: int = 0
    timeouts: int = 0
    rejected: int = 0
    dropped_local: int = 0
    mean_throughput: float = 0.0
    mean_violation_rate: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def success_fraction(self) -> float:
        if self.total_frames == 0:
            return 0.0
        return self.successful / self.total_frames

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.name:<16s} P={self.mean_throughput:6.2f} fps  "
            f"T={self.mean_violation_rate:5.2f}/s  "
            f"ok={self.successful:5d}/{self.total_frames:<5d} "
            f"({100 * self.success_fraction:5.1f}%)  "
            f"timeouts={self.timeouts:<5d} rejected={self.rejected:<5d}"
        )


def fleet_extras(extras: Dict[str, float]) -> Dict[str, float]:
    """The ``fleet.*`` slice of a report's extras, sorted by key.

    Fleet runs publish per-server routing/failover/ejection counters
    and fleet-wide MTTR through :attr:`QosReport.extras`; this pulls
    them out in one stable order for reports and goldens.
    """
    return {k: extras[k] for k in sorted(extras) if k.startswith("fleet.")}


def realtime_extras(extras: Dict[str, float]) -> Dict[str, float]:
    """The ``realtime.*`` slice of a report's extras, sorted by key.

    Wall-clock runs (:mod:`repro.realtime.loadgen`) publish tick-jitter
    percentiles, breaker-open counts and local-fallback totals through
    :attr:`QosReport.extras`; this pulls them out in one stable order.
    """
    return {k: extras[k] for k in sorted(extras) if k.startswith("realtime.")}
