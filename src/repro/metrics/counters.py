"""Event counters with sliding-window rate queries."""

from __future__ import annotations

from collections import deque
from typing import Deque


class EventCounter:
    """A monotone counter of discrete events with timestamps retained.

    Supports totals and interval counts; the backing deque is pruned
    lazily so long simulations stay O(window) in memory.
    """

    def __init__(self, retention: float = 30.0) -> None:
        if retention <= 0:
            raise ValueError(f"retention must be positive, got {retention}")
        self.retention = retention
        self.total = 0
        self._stamps: Deque[float] = deque()

    def record(self, t: float, count: int = 1) -> None:
        """Record ``count`` events at time ``t`` (monotone in ``t``)."""
        if count < 0:
            raise ValueError(f"negative count {count}")
        if self._stamps and t < self._stamps[-1]:
            raise ValueError(
                f"timestamps must be monotone: got {t} after {self._stamps[-1]}"
            )
        self.total += count
        for _ in range(count):
            self._stamps.append(t)
        self._prune(t)

    def count_since(self, t0: float, now: float) -> int:
        """Events in the half-open interval ``(t0, now]``."""
        self._prune(now)
        if now - t0 > self.retention:
            raise ValueError(
                f"interval [{t0}, {now}] exceeds retention {self.retention}"
            )
        return sum(1 for s in self._stamps if t0 < s <= now)

    def rate(self, window: float, now: float) -> float:
        """Events per second over the trailing ``window`` seconds."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        return self.count_since(now - window, now) / window

    def _prune(self, now: float) -> None:
        cutoff = now - self.retention
        while self._stamps and self._stamps[0] <= cutoff:
            self._stamps.popleft()


class WindowedRate:
    """The controller's measurement primitive: a per-second rate,
    averaged over the last ``window`` one-second buckets.

    §III-A.1: "our controller's input is the average of T from the
    last few seconds" — this is that average.  Buckets are closed at
    each measurement step, so the value is stable within a step.
    """

    def __init__(self, window_buckets: int = 3) -> None:
        if window_buckets < 1:
            raise ValueError(f"need >= 1 bucket, got {window_buckets}")
        self.window_buckets = window_buckets
        self._closed: Deque[float] = deque(maxlen=window_buckets)
        self._open_count = 0

    def record(self, count: int = 1) -> None:
        """Count events into the currently open bucket."""
        if count < 0:
            raise ValueError(f"negative count {count}")
        self._open_count += count

    def close_bucket(self, bucket_seconds: float = 1.0) -> float:
        """End the open bucket; returns its rate (events/s)."""
        if bucket_seconds <= 0:
            raise ValueError(f"bucket length must be positive, got {bucket_seconds}")
        rate = self._open_count / bucket_seconds
        self._closed.append(rate)
        self._open_count = 0
        return rate

    @property
    def average(self) -> float:
        """Mean rate over the retained closed buckets (0 if none)."""
        if not self._closed:
            return 0.0
        return sum(self._closed) / len(self._closed)

    @property
    def last(self) -> float:
        """Rate of the most recently closed bucket (0 if none)."""
        return self._closed[-1] if self._closed else 0.0
