"""Failure taxonomy: what exactly went wrong on the offload path.

The controller's ``T`` folds every failure into one number — that is
the paper's deliberate observability constraint.  The *resilience*
layer (:mod:`repro.resilience`) must not be so blind: a circuit
breaker needs to distinguish "server said it is saturated, back off"
from "the network went silent, probe", and chaos invariants need to
assert which defense fired.  :class:`FailureTaxonomy` is the shared
counter set both consult; it feeds the control transcript (via the
per-period :class:`~repro.control.base.Measurement` rates) and the
whole-run QoS extras.
"""

from __future__ import annotations

import enum
from typing import Dict


class FailureKind(enum.Enum):
    """One classified event on the resilient offload path."""

    #: watchdog fired with no response at all (network dead or server
    #: answer still in flight past the deadline)
    SILENT_TIMEOUT = "silent_timeout"
    #: server rejection without overload semantics (legacy/rejected)
    REJECTED = "rejected"
    #: explicit server pushback: shed with a retry-after hint
    OVERLOADED = "overloaded"
    #: frame diverted to the local pipeline while the breaker was open
    BREAKER_FALLBACK = "breaker_fallback"
    #: diverted frame the local pipeline could not even accept
    BREAKER_FALLBACK_DROPPED = "breaker_fallback_dropped"
    #: retransmission actually placed on the wire
    RETRY_SENT = "retry_sent"
    #: retransmission suppressed: token bucket empty
    RETRY_DENIED = "retry_denied"
    #: retransmission suppressed: remaining deadline budget too small
    #: for any reply to still be useful
    RETRY_WINDOW_CLOSED = "retry_window_closed"
    #: half-open trial probe that came back dead
    PROBE_FAILED = "probe_failed"
    #: in-flight frame re-routed to a healthy server after its server
    #: was ejected from the fleet (watchdog unchanged: no extension)
    FAILED_OVER = "failed_over"
    #: in-flight frame settled at ejection time because no failover was
    #: possible (budget too thin, already failed over, or no target)
    CRASH_DROPPED = "crash_dropped"
    #: offload attempt with no routable server (fleet brownout or
    #: fleet-wide admission denial)
    NO_ROUTE = "no_route"


class FailureTaxonomy:
    """Monotone per-kind counters with a per-bucket view.

    ``record`` bumps both the cumulative count and the open
    measurement bucket; :meth:`close_bucket` returns the bucket's
    per-second rates and resets it, mirroring the device's
    measurement-loop bucket discipline so taxonomy rates line up
    sample-for-sample with every other per-period series.
    """

    def __init__(self) -> None:
        self._totals: Dict[FailureKind, int] = {k: 0 for k in FailureKind}
        self._bucket: Dict[FailureKind, int] = {k: 0 for k in FailureKind}

    def record(self, kind: FailureKind, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"negative count {count}")
        self._totals[kind] += count
        self._bucket[kind] += count

    def total(self, kind: FailureKind) -> int:
        return self._totals[kind]

    def bucket(self, kind: FailureKind) -> int:
        """Events of ``kind`` in the currently open bucket."""
        return self._bucket[kind]

    def close_bucket(self, bucket_seconds: float = 1.0) -> Dict[FailureKind, float]:
        """End the open bucket; returns per-kind rates (events/s)."""
        if bucket_seconds <= 0:
            raise ValueError(f"bucket length must be positive, got {bucket_seconds}")
        rates = {k: c / bucket_seconds for k, c in self._bucket.items()}
        self._bucket = {k: 0 for k in FailureKind}
        return rates

    def as_dict(self) -> Dict[str, int]:
        """Cumulative counts keyed by the kind's wire name."""
        return {k.value: c for k, c in self._totals.items()}
