"""Time-series recording and NumPy-backed analysis helpers."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class TimeSeries:
    """An append-only (time, value) series.

    Appends are O(1) Python-list pushes (the simulation's hot path);
    analysis views are materialized as NumPy arrays on demand and
    cached until the next append — following the hpc guides' rule of
    keeping the hot loop simple and vectorizing the analysis instead.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._t: List[float] = []
        self._v: List[float] = []
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    def append(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ValueError(f"time must be monotone: {t} after {self._t[-1]}")
        self._t.append(float(t))
        self._v.append(float(value))
        self._cache = None

    def __len__(self) -> int:
        return len(self._t)

    def __iter__(self):
        return iter(zip(self._t, self._v))

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return self._arrays()[0]

    @property
    def values(self) -> np.ndarray:
        return self._arrays()[1]

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._cache is None:
            self._cache = (np.asarray(self._t), np.asarray(self._v))
        return self._cache

    # ------------------------------------------------------------------
    def mean_over(self, t0: float, t1: float) -> float:
        """Mean of samples with t0 <= t < t1 (NaN if empty)."""
        if t1 <= t0:
            raise ValueError(f"empty interval [{t0}, {t1})")
        t, v = self._arrays()
        mask = (t >= t0) & (t < t1)
        if not mask.any():
            return float("nan")
        return float(v[mask].mean())

    def max_over(self, t0: float, t1: float) -> float:
        t, v = self._arrays()
        mask = (t >= t0) & (t < t1)
        if not mask.any():
            return float("nan")
        return float(v[mask].max())

    def slice(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with t0 <= t < t1 as a new series."""
        out = TimeSeries(self.name)
        t, v = self._arrays()
        mask = (t >= t0) & (t < t1)
        out._t = t[mask].tolist()
        out._v = v[mask].tolist()
        return out

    def resample(self, step: float, t0: float = 0.0, t1: Optional[float] = None) -> "TimeSeries":
        """Zero-order-hold resample onto a regular grid."""
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        t, v = self._arrays()
        if len(t) == 0:
            return TimeSeries(self.name)
        end = t1 if t1 is not None else float(t[-1])
        grid = np.arange(t0, end + step * 0.5, step)
        idx = np.searchsorted(t, grid, side="right") - 1
        out = TimeSeries(self.name)
        for g, i in zip(grid, idx):
            out.append(float(g), float(v[i]) if i >= 0 else float("nan"))
        return out

    def to_rows(self) -> List[Tuple[float, float]]:
        return list(zip(self._t, self._v))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeSeries({self.name!r}, n={len(self)})"
