"""Controller checkpointing for warm restart.

A checkpoint is taken on *every* measure tick (1 Hz at the paper's
settings), so a controller crash loses at most one control period of
state.  The payload is deliberately small and JSON-able — the format a
real deployment would write to flash or a sidecar KV store:

.. code-block:: json

    {
      "version": 1,
      "time": 61.0,
      "target": 28.9,
      "controller": {
        "target": 28.9,
        "pid": {"integral": 0.0, "prev_error": 1.1},
        "last_error": 1.1,
        "last_update": 0.22
      },
      "breaker": {
        "state": "closed",
        "current_backoff": 1.0,
        "consecutive_failures": 0,
        "probe_successes": 0
      }
    }

``target`` (top level) is the splitter target actually *in force* —
under a tripped breaker it differs from the controller's own notion —
and ``breaker`` is absent when no resilience layer is configured.
:class:`CheckpointStore` is the in-simulation stand-in for the durable
side: latest-wins, no history, because a warm restart only ever wants
the newest consistent snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: bump when the checkpoint payload shape changes incompatibly
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class ControllerCheckpoint:
    """One consistent snapshot of the control loop's mutable state."""

    #: simulation time the snapshot was taken (end of a measure tick)
    time: float
    #: splitter target in force (what actuation is actually doing)
    target: float
    #: :meth:`~repro.control.base.Controller.snapshot_state` payload
    controller_state: dict
    #: :meth:`~repro.resilience.breaker.CircuitBreaker.snapshot`
    #: payload, or None when no resilience layer is configured
    breaker_state: Optional[dict] = None

    def to_dict(self) -> dict:
        out = {
            "version": CHECKPOINT_VERSION,
            "time": self.time,
            "target": self.target,
            "controller": self.controller_state,
        }
        if self.breaker_state is not None:
            out["breaker"] = self.breaker_state
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ControllerCheckpoint":
        version = data.get("version", CHECKPOINT_VERSION)
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return cls(
            time=float(data["time"]),
            target=float(data["target"]),
            controller_state=dict(data["controller"]),
            breaker_state=(
                dict(data["breaker"]) if data.get("breaker") is not None else None
            ),
        )


class CheckpointStore:
    """Latest-wins checkpoint storage (simulated durable medium)."""

    def __init__(self) -> None:
        self.latest: Optional[ControllerCheckpoint] = None
        #: total snapshots ever saved (observability)
        self.saved = 0

    def save(self, checkpoint: ControllerCheckpoint) -> None:
        self.latest = checkpoint
        self.saved += 1

    def clear(self) -> None:
        """Drop the stored snapshot (models losing the durable medium)."""
        self.latest = None
