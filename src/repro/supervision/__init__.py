"""Supervision layer: crash/restart recovery for the control plane.

The paper's loop assumes it never dies.  This package drops that
assumption:

* :class:`~repro.supervision.heartbeat.Heartbeat` — per-component
  liveness bookkeeping;
* :class:`~repro.supervision.checkpoint.CheckpointStore` /
  :class:`~repro.supervision.checkpoint.ControllerCheckpoint` —
  per-tick controller state snapshots (``P_o``, PID history, breaker)
  so a restarted controller resumes *warm*;
* :class:`~repro.supervision.supervisor.Supervisor` — the watchdog
  that detects dead processes and stale telemetry, applies the
  hold-then-decay degraded-telemetry policy, performs warm/cold
  restarts, and exports MTTR / missed-window / restart counters.

Pair it with the process-kill injectors in :mod:`repro.faults.process`
and the ``repro chaos --supervision`` scenario.
"""

from repro.supervision.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    ControllerCheckpoint,
)
from repro.supervision.heartbeat import Heartbeat
from repro.supervision.supervisor import (
    SupervisionConfig,
    SupervisionStats,
    Supervisor,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "ControllerCheckpoint",
    "Heartbeat",
    "SupervisionConfig",
    "SupervisionStats",
    "Supervisor",
]
