"""Heartbeat bookkeeping for supervised components.

A heartbeat is the cheapest liveness signal there is: "this component
did its periodic thing at time t".  The supervisor's watchdog compares
each component's last beat against its expected cadence — no beat for
more than ``grace`` periods means the component is dead *or* its
telemetry path is (the two are indistinguishable from the outside,
which is exactly why the degraded-telemetry policy treats them the
same way).
"""

from __future__ import annotations

from typing import Optional


class Heartbeat:
    """Last-beat tracker for one component with a known cadence."""

    def __init__(self, name: str, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval}")
        self.name = name
        #: expected seconds between beats
        self.interval = interval
        self.last_beat: Optional[float] = None
        self.beats = 0

    def beat(self, now: float) -> None:
        self.last_beat = now
        self.beats += 1

    def age(self, now: float) -> float:
        """Seconds since the last beat (since t=0 if none yet)."""
        if self.last_beat is None:
            return now
        return now - self.last_beat

    def is_stale(self, now: float, grace_periods: float) -> bool:
        """True when the last beat is older than ``grace_periods``.

        A component that has *never* beaten is judged from t=0 on the
        same grace, so a process that dies before its first beat still
        trips the watchdog.
        """
        return self.age(now) > grace_periods * self.interval

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Heartbeat({self.name!r}, interval={self.interval:g}, "
            f"beats={self.beats}, last={self.last_beat})"
        )
