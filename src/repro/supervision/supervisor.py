"""The supervisor: watchdog, restart policy, degraded-telemetry control.

One :class:`Supervisor` watches one scenario runtime.  It is glued to
the testbed at three points:

* the device's ``on_measure_tick`` hook — every admitted measurement
  beats the controller's heartbeat and (when enabled) checkpoints the
  controller;
* a watchdog process polling component liveness (measure loop, server
  service loop, camera) and telemetry freshness every
  ``watchdog_period`` seconds;
* restart entry points (:meth:`restart_controller`,
  :meth:`restart_server`, :meth:`restart_camera`) that the process-kill
  fault injectors call when their windows close, so downtime stays
  exactly as scripted and runs remain deterministic.

Degraded-telemetry policy (the paper has no story here; this is the
supervision layer's contribution): when the controller's telemetry
goes silent for more than ``stale_after_periods`` measure periods, the
supervisor first *holds the last action* for ``hold_periods`` — a
transient gap should not move the operating point — then decays the
splitter target multiplicatively (``decay_factor`` per period) toward
the paper's ``0.1·F_s`` standing probe.  Rationale: with no ``T``
signal the controller cannot distinguish a healthy path from a dead
one, and the standing probe is precisely the paper's own answer to
"offload blindly, but cheaply, so recovery is immediate" (§III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.control.base import Controller, Measurement
from repro.device.device import EdgeDevice
from repro.server.server import EdgeServer
from repro.sim.core import Environment
from repro.supervision.checkpoint import CheckpointStore, ControllerCheckpoint

#: component keys used in stats tables
CONTROLLER = "controller"
SERVER = "server"
CAMERA = "camera"


@dataclass(frozen=True)
class SupervisionConfig:
    """Tuning knobs for one supervisor."""

    #: checkpoint every measure tick; False = restarts are always cold
    checkpoint_enabled: bool = True
    #: watchdog poll period, seconds
    watchdog_period: float = 0.5
    #: telemetry silence (in measure periods) before it counts as stale
    stale_after_periods: float = 3.0
    #: stale periods to hold the last action before decaying
    hold_periods: float = 2.0
    #: per-period multiplicative decay toward the standing probe
    decay_factor: float = 0.5
    #: standing-probe floor as a fraction of F_s (the paper's 0.1)
    probe_frac: float = 0.1
    #: |splitter target - pre-crash target| below which the controller
    #: counts as recovered (MTTR stops accruing)
    settle_tolerance_fps: float = 1.0

    def __post_init__(self) -> None:
        if self.watchdog_period <= 0:
            raise ValueError("watchdog period must be positive")
        if self.stale_after_periods <= 0 or self.hold_periods < 0:
            raise ValueError("staleness thresholds must be non-negative")
        if not 0.0 < self.decay_factor < 1.0:
            raise ValueError(
                f"decay factor must be in (0,1), got {self.decay_factor}"
            )
        if not 0.0 <= self.probe_frac <= 1.0:
            raise ValueError(f"probe fraction must be in [0,1], got {self.probe_frac}")
        if self.settle_tolerance_fps <= 0:
            raise ValueError("settle tolerance must be positive")


@dataclass
class SupervisionStats:
    """Counters a chaos run exports into the QoS summary."""

    crashes: Dict[str, int] = field(default_factory=dict)
    restarts: Dict[str, int] = field(default_factory=dict)
    warm_restarts: int = 0
    cold_restarts: int = 0
    #: measure windows that never delivered telemetry during stale
    #: episodes (beyond the detection threshold itself)
    missed_windows: int = 0
    #: stale episodes detected (one per silence, however long)
    stale_detections: int = 0
    #: decay actuations applied by the degraded-telemetry policy
    decay_steps: int = 0
    checkpoints_saved: int = 0
    #: detection-to-recovery seconds per component; for the controller,
    #: recovery means the splitter target re-settled within the
    #: configured tolerance of its pre-crash value
    mttr: Dict[str, List[float]] = field(default_factory=dict)

    def _bump(self, table: Dict[str, int], component: str) -> None:
        table[component] = table.get(component, 0) + 1

    def record_mttr(self, component: str, seconds: float) -> None:
        self.mttr.setdefault(component, []).append(seconds)

    # ------------------------------------------------------------------
    def as_extras(self) -> Dict[str, float]:
        """Flat float map merged into ``QosReport.extras``."""
        samples = [s for values in self.mttr.values() for s in values]
        extras = {
            "supervision.crashes": float(sum(self.crashes.values())),
            "supervision.restarts": float(sum(self.restarts.values())),
            "supervision.warm_restarts": float(self.warm_restarts),
            "supervision.cold_restarts": float(self.cold_restarts),
            "supervision.missed_windows": float(self.missed_windows),
            "supervision.stale_detections": float(self.stale_detections),
            "supervision.decay_steps": float(self.decay_steps),
            "supervision.checkpoints_saved": float(self.checkpoints_saved),
        }
        if samples:
            extras["supervision.mttr_mean"] = sum(samples) / len(samples)
            extras["supervision.mttr_max"] = max(samples)
        for component, values in self.mttr.items():
            if values:
                extras[f"supervision.mttr.{component}"] = sum(values) / len(values)
        return extras

    def as_dict(self) -> dict:
        """JSON-able structured form (chaos ``--json`` output)."""
        return {
            "crashes": dict(self.crashes),
            "restarts": dict(self.restarts),
            "warm_restarts": self.warm_restarts,
            "cold_restarts": self.cold_restarts,
            "missed_windows": self.missed_windows,
            "stale_detections": self.stale_detections,
            "decay_steps": self.decay_steps,
            "checkpoints_saved": self.checkpoints_saved,
            "mttr": {k: list(v) for k, v in self.mttr.items()},
        }


class Supervisor:
    """Heartbeats + watchdog + checkpoint/restore for one runtime."""

    def __init__(
        self,
        env: Environment,
        device: EdgeDevice,
        server: EdgeServer,
        config: Optional[SupervisionConfig] = None,
        controller: Optional[Controller] = None,
    ) -> None:
        from repro.supervision.heartbeat import Heartbeat

        self.env = env
        self.device = device
        self.server = server
        self.config = config or SupervisionConfig()
        #: the *real* controller (pass it explicitly when the device's
        #: ``controller`` attribute is wrapped, e.g. for transcripts —
        #: checkpoints must capture the inner state machine)
        self.controller = controller if controller is not None else device.controller
        self.store = CheckpointStore()
        self.stats = SupervisionStats()
        period = device.config.measure_period
        self.heartbeats: Dict[str, Heartbeat] = {
            CONTROLLER: Heartbeat(CONTROLLER, period),
            SERVER: Heartbeat(SERVER, self.config.watchdog_period),
            CAMERA: Heartbeat(CAMERA, self.config.watchdog_period),
        }
        #: detection time per currently-down component
        self._down_since: Dict[str, float] = {}
        self._pre_crash_target: Optional[float] = None
        # per-stale-episode actuation state
        self._stale_active = False
        self._episode_missed = 0
        self._episode_decays = 0
        device.on_measure_tick = self._on_measure_tick
        env.process(self._watchdog_loop(), name="supervisor:watchdog")

    # ------------------------------------------------------------------
    # measure-tick hook: heartbeat + checkpoint + recovery bookkeeping
    # ------------------------------------------------------------------
    def _on_measure_tick(self, measurement: Measurement) -> None:
        now = self.env.now
        self.heartbeats[CONTROLLER].beat(now)
        self._stale_active = False
        self._episode_missed = 0
        self._episode_decays = 0

        down_at = self._down_since.get(CONTROLLER)
        if down_at is not None:
            # One-sided on purpose: at or above the pre-crash operating
            # point counts as recovered (a restart landing mid-climb
            # legitimately keeps climbing past the transient pre value).
            pre = self._pre_crash_target
            settled = (
                pre is None
                or self.device.splitter.target
                >= pre - self.config.settle_tolerance_fps
            )
            if settled:
                self.stats.record_mttr(CONTROLLER, now - down_at)
                del self._down_since[CONTROLLER]
                self._pre_crash_target = None

        if self.config.checkpoint_enabled:
            state = self.controller.snapshot_state()
            if state is not None:
                breaker = None
                if self.device.resilience is not None:
                    breaker = self.device.resilience.breaker.snapshot()
                self.store.save(
                    ControllerCheckpoint(
                        time=now,
                        target=self.device.splitter.target,
                        controller_state=state,
                        breaker_state=breaker,
                    )
                )
                self.stats.checkpoints_saved += 1

    # ------------------------------------------------------------------
    # watchdog: liveness + telemetry freshness
    # ------------------------------------------------------------------
    def _watchdog_loop(self):
        env = self.env
        cfg = self.config
        period = self.device.config.measure_period
        while True:
            yield env.sleep(cfg.watchdog_period)
            now = env.now

            # -- liveness ------------------------------------------------
            if not self.device.measure_alive:
                self._note_crash(CONTROLLER, now)
            if self.server.service_alive:
                self.heartbeats[SERVER].beat(now)
                self._note_recovered(SERVER, now)
            else:
                self._note_crash(SERVER, now)
            source = self.device.source
            if source.alive or source.done.triggered:
                self.heartbeats[CAMERA].beat(now)
                self._note_recovered(CAMERA, now)
            else:
                self._note_crash(CAMERA, now)

            # -- telemetry freshness ------------------------------------
            hb = self.heartbeats[CONTROLLER]
            if not hb.is_stale(now, cfg.stale_after_periods):
                continue
            if not self._stale_active:
                self._stale_active = True
                self.stats.stale_detections += 1
            # Windows that were due but never closed, beyond the
            # detection threshold, counted incrementally as silence
            # stretches (the QoS "missed windows" figure).
            periods_silent = int(hb.age(now) / period)
            missed = max(0, periods_silent - int(cfg.stale_after_periods) + 1)
            if missed > self._episode_missed:
                self.stats.missed_windows += missed - self._episode_missed
                self._episode_missed = missed
            # Hold-then-decay: leave the last action alone for
            # hold_periods after detection, then step the splitter
            # toward the standing probe once per silent period.
            decay_due = max(
                0,
                periods_silent
                - int(cfg.stale_after_periods)
                - int(cfg.hold_periods),
            )
            while self._episode_decays < decay_due:
                self._episode_decays += 1
                self._decay_step(now)

    def _decay_step(self, now: float) -> None:
        device = self.device
        probe = self.config.probe_frac * device.config.frame_rate
        current = device.splitter.target
        decayed = probe + self.config.decay_factor * (current - probe)
        if abs(decayed - probe) < 1e-9:
            decayed = probe
        device.splitter.set_target(decayed)
        device.traces.offload_target.append(now, decayed)
        self.stats.decay_steps += 1
        if self.env.tracer is not None:
            self.env.tracer.event(now, "supervision.decay", target=float(decayed))

    # ------------------------------------------------------------------
    def _note_crash(self, component: str, now: float) -> None:
        if component in self._down_since:
            return
        self._down_since[component] = now
        self.stats._bump(self.stats.crashes, component)
        if self.env.tracer is not None:
            self.env.tracer.event(now, "supervision.crash", component=component)
        if component == CONTROLLER:
            # what "recovered" must re-settle to (captured before any
            # decay steps move the splitter)
            self._pre_crash_target = self.device.splitter.target

    def _note_recovered(self, component: str, now: float) -> None:
        """Liveness-based recovery (server / camera)."""
        down_at = self._down_since.pop(component, None)
        if down_at is not None:
            self.stats.record_mttr(component, now - down_at)

    # ------------------------------------------------------------------
    # restart entry points (called by injectors / operators)
    # ------------------------------------------------------------------
    def restart_controller(self, warm: Optional[bool] = None) -> bool:
        """Bring a killed control loop back up.

        ``warm=None`` follows the config (checkpointing on => warm).
        A warm restart restores the controller, splitter target and
        breaker from the latest checkpoint; a cold restart loses all
        of it — ``reset()`` + ``initial_target`` + a fresh breaker —
        and re-converges from scratch, exactly the behaviour the
        checkpoint exists to avoid.  Returns False when the loop was
        not down (nothing to do).
        """
        device = self.device
        if device.measure_alive:
            return False
        cfg = self.config
        if warm is None:
            warm = cfg.checkpoint_enabled
        now = self.env.now
        controller = self.controller
        # The crash lost the in-memory state either way; a warm restart
        # differs only in what it reloads afterwards.
        controller.reset()
        checkpoint = self.store.latest if warm else None
        if checkpoint is not None:
            controller.restore_state(checkpoint.controller_state)
            device.splitter.set_target(checkpoint.target)
            if device.resilience is not None and checkpoint.breaker_state is not None:
                device.resilience.breaker.restore(checkpoint.breaker_state, now)
            self.stats.warm_restarts += 1
        else:
            device.splitter.set_target(
                controller.initial_target(device.config.frame_rate)
            )
            if device.resilience is not None:
                breaker = device.resilience.breaker
                breaker.restore(
                    {
                        "state": "closed",
                        "current_backoff": breaker.config.backoff_initial,
                        "consecutive_failures": 0,
                        "probe_successes": 0,
                    },
                    now,
                )
            self.stats.cold_restarts += 1
        device.restart_measure_loop()
        # Re-arm the freshness clock: the loop just came back, so give
        # it a full staleness allowance before the decay policy may act
        # again — otherwise the watchdog would decay the just-restored
        # target before the first post-restart measure tick lands.
        self.heartbeats[CONTROLLER].beat(now)
        self._stale_active = False
        self._episode_missed = 0
        self._episode_decays = 0
        self.stats._bump(self.stats.restarts, CONTROLLER)
        if self.env.tracer is not None:
            self.env.tracer.event(
                now, "supervision.restart", component=CONTROLLER, warm=bool(warm)
            )
        return True

    def restart_server(self) -> bool:
        if self.server.service_alive:
            return False
        self.server.restart()
        self.stats._bump(self.stats.restarts, SERVER)
        if self.env.tracer is not None:
            self.env.tracer.event(
                self.env.now, "supervision.restart", component=SERVER
            )
        return True

    def restart_camera(self) -> bool:
        source = self.device.source
        if source.alive or source.done.triggered:
            return False
        source.restart()
        self.stats._bump(self.stats.restarts, CAMERA)
        if self.env.tracer is not None:
            self.env.tracer.event(
                self.env.now, "supervision.restart", component=CAMERA
            )
        return True
