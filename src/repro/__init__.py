"""FrameFeedback: closed-loop control for dynamic offloading of
real-time edge inference — a full reproduction of the IPPS 2024 paper.

Public API tour
---------------
Controllers (the paper's contribution, §III)::

    from repro import FrameFeedbackController, FrameFeedbackSettings

Baselines (§IV-B)::

    from repro import (
        LocalOnlyController, AlwaysOffloadController, AllOrNothingController,
    )

Running the paper's testbed (§IV)::

    from repro import Scenario, run_scenario, DeviceConfig
    from repro.workloads.schedules import table_v_schedule

    scenario = Scenario(
        controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
        device=DeviceConfig(total_frames=4000),
        network=table_v_schedule(),
    )
    result = run_scenario(scenario)
    print(result.qos.row())

Experiments (one per paper table/figure) live in
:mod:`repro.experiments`; substrates (DES kernel, NetEm-style link,
GPU server, device pipelines) under :mod:`repro.sim`,
:mod:`repro.netem`, :mod:`repro.server` and :mod:`repro.device`.
"""

from repro.control.base import Controller, Measurement
from repro.control.baselines import (
    AllOrNothingController,
    AlwaysOffloadController,
    LocalOnlyController,
)
from repro.control.framefeedback import (
    PAPER_SETTINGS,
    FrameFeedbackController,
    FrameFeedbackSettings,
)
from repro.device.config import DeviceConfig
from repro.experiments.scenario import RunResult, Scenario, run_scenario
from repro.netem.link import LinkConditions
from repro.netem.schedule import NetworkSchedule
from repro.workloads.loadgen import LoadSchedule

__version__ = "1.0.0"

__all__ = [
    "AllOrNothingController",
    "AlwaysOffloadController",
    "Controller",
    "DeviceConfig",
    "FrameFeedbackController",
    "FrameFeedbackSettings",
    "LinkConditions",
    "LoadSchedule",
    "LocalOnlyController",
    "Measurement",
    "NetworkSchedule",
    "PAPER_SETTINGS",
    "RunResult",
    "Scenario",
    "run_scenario",
    "__version__",
]
