"""Content-addressed result cache for serialized scenarios.

Sweep notebooks re-run the same configs constantly; since every run is
a pure function of its config dict, results can be cached by content
hash.  The cache stores the :class:`~repro.experiments.parallel
.RunSummary` scalars plus requested traces as JSON; hits skip the
simulation entirely.

Keyed on ``sha256(canonical-json(config) + trace names + CACHE_EPOCH)``
— bump :data:`CACHE_EPOCH` when substrate calibration changes so stale
physics never resurfaces.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.experiments.parallel import RunSummary, execute_config

#: bump on any calibration / semantics change that invalidates results
CACHE_EPOCH = 1


def config_key(config: dict, trace_names: Sequence[str] = ()) -> str:
    """Stable content hash of a scenario config."""
    payload = json.dumps(
        {"config": config, "traces": sorted(trace_names), "epoch": CACHE_EPOCH},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


class ResultCache:
    """Directory-backed cache of :class:`RunSummary` objects."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, config: dict, trace_names: Sequence[str] = ()) -> Optional[RunSummary]:
        path = self._path(config_key(config, trace_names))
        if not path.exists():
            return None
        data = json.loads(path.read_text())
        return RunSummary(
            config=data["config"],
            controller=data["controller"],
            seed=data["seed"],
            mean_throughput=data["mean_throughput"],
            mean_violation_rate=data["mean_violation_rate"],
            successful=data["successful"],
            timeouts=data["timeouts"],
            total_frames=data["total_frames"],
            traces={k: np.asarray(v) for k, v in data["traces"].items()},
        )

    def put(self, summary: RunSummary, trace_names: Sequence[str] = ()) -> Path:
        path = self._path(config_key(summary.config, trace_names))
        payload = {
            "config": summary.config,
            "controller": summary.controller,
            "seed": summary.seed,
            "mean_throughput": summary.mean_throughput,
            "mean_violation_rate": summary.mean_violation_rate,
            "successful": summary.successful,
            "timeouts": summary.timeouts,
            "total_frames": summary.total_frames,
            "traces": {k: v.tolist() for k, v in summary.traces.items()},
        }
        path.write_text(json.dumps(payload))
        return path

    # ------------------------------------------------------------------
    def run(self, config: dict, trace_names: Sequence[str] = ()) -> RunSummary:
        """Cached execution: simulate only on a miss."""
        cached = self.get(config, trace_names)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        summary = execute_config(config, trace_names)
        self.put(summary, trace_names)
        return summary

    def clear(self) -> int:
        """Delete all cached entries; returns the count removed."""
        n = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            n += 1
        return n
