"""Result export and scenario serialization.

* :mod:`repro.io.export` — dump a :class:`~repro.experiments.scenario
  .RunResult` (traces, QoS, attribution) to CSV/JSON artifacts a
  notebook or gnuplot can consume, and load traces back;
* :mod:`repro.io.config` — serialize a :class:`Scenario` to a plain
  dict / JSON file and rebuild it, so experiment configurations are
  shareable artifacts (used by ``framefeedback run --config``).
"""

from repro.io.cache import ResultCache, config_key
from repro.io.config import scenario_from_dict, scenario_to_dict
from repro.io.export import (
    export_run,
    load_timeseries_csv,
    qos_to_dict,
    timeseries_to_csv,
)

__all__ = [
    "ResultCache",
    "config_key",
    "export_run",
    "load_timeseries_csv",
    "qos_to_dict",
    "scenario_from_dict",
    "scenario_to_dict",
    "timeseries_to_csv",
]
