"""Scenario (de)serialization: experiments as shareable JSON artifacts.

Only declarative pieces serialize — device settings, schedules, seed,
GPU model, batching policy.  The controller is referenced by *name*
(resolved through the same registry the experiment harness uses), so a
config file fully determines a run:

.. code-block:: json

    {
      "controller": "FrameFeedback",
      "seed": 3,
      "device": {"total_frames": 4000, "frame_rate": 30.0},
      "network": [[0, 10, 0], [30, 4, 0]],
      "load": [[0, 0], [10, 90]]
    }
"""

from __future__ import annotations

from typing import Optional

from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario
from repro.experiments.standard import extended_controllers
from repro.fleet.config import FleetConfig, FleetTopology
from repro.models.device_profiles import DEVICE_PROFILES
from repro.models.frames import FrameSpec
from repro.models.latency import GpuBatchModel
from repro.models.zoo import MODEL_ZOO
from repro.netem.schedule import NetworkSchedule
from repro.server.batching import BatchPolicy
from repro.workloads.loadgen import LoadSchedule

#: every key :func:`scenario_from_dict` understands — anything else is
#: an error, never a silent no-op (extended fields like ``faults`` /
#: ``population`` belong to the :mod:`repro.search` scenario language)
KNOWN_KEYS = (
    "controller",
    "seed",
    "duration",
    "device",
    "gpu",
    "network",
    "load",
    "batch_policy",
    "uplink_queue_bytes",
    "topology",
)

DEVICE_KEYS = (
    "name",
    "profile",
    "model",
    "frame_rate",
    "deadline",
    "measure_period",
    "t_window_buckets",
    "total_frames",
    "resolution",
    "jpeg_quality",
)

GPU_KEYS = ("base_latency", "per_item", "jitter_sigma")

TOPOLOGY_KEYS = (
    "servers",
    "policy",
    "failover",
    "admission_rate",
    "admission_burst",
    "probe_period",
    "stale_grace_periods",
    "fail_threshold",
    "probation",
)


def _reject_unknown(data: dict, allowed, where: str) -> None:
    """Unknown keys are config bugs; name them instead of dropping them."""
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown {where} field(s) {unknown}; "
            f"valid fields: {sorted(allowed)}"
        )


def _schedule_rows(data: dict, key: str) -> list:
    """The phase rows of ``data[key]``, lowering a generator dict if needed."""
    value = data[key]
    if not isinstance(value, dict):
        return [tuple(row) for row in value]
    # a generator dict ({"kind": "diurnal", ...}) — lower it through the
    # scenario compiler, which also validates the generator's fields
    from repro.search.compiler import load_rows, network_rows
    from repro.search.language import ScenarioSpec

    sub = {k: data[k] for k in ("device", "duration", key) if k in data}
    spec = ScenarioSpec.from_dict(sub)
    rows = network_rows(spec) if key == "network" else load_rows(spec)
    return [tuple(row) for row in rows]


def scenario_to_dict(scenario: Scenario, controller_name: str) -> dict:
    """Serialize the declarative parts of a scenario.

    ``controller_name`` must be a registry name (the factory itself is
    not serializable).
    """
    if controller_name not in extended_controllers():
        raise ValueError(
            f"unknown controller {controller_name!r}; "
            f"available: {sorted(extended_controllers())}"
        )
    d = scenario.device
    out: dict = {
        "controller": controller_name,
        "seed": scenario.seed,
        "batch_policy": scenario.batch_policy.value,
        "uplink_queue_bytes": scenario.uplink_queue_bytes,
        "gpu": {
            "base_latency": scenario.gpu_model.base_latency,
            "per_item": scenario.gpu_model.per_item,
            "jitter_sigma": scenario.gpu_model.jitter_sigma,
        },
        "device": {
            "name": d.name,
            "profile": d.profile.name,
            "model": d.model.name,
            "frame_rate": d.frame_rate,
            "deadline": d.deadline,
            "measure_period": d.measure_period,
            "t_window_buckets": d.t_window_buckets,
            "total_frames": d.total_frames,
            "resolution": d.frame_spec.resolution,
            "jpeg_quality": d.frame_spec.jpeg_quality,
        },
    }
    if scenario.duration is not None:
        out["duration"] = scenario.duration
    if scenario.network is not None:
        out["network"] = [
            [p.start, p.conditions.bandwidth, p.conditions.loss * 100.0]
            for p in scenario.network.phases
        ]
    if scenario.load is not None:
        out["load"] = [[p.start, p.rate] for p in scenario.load.phases]
    if scenario.topology is not None:
        topo = scenario.topology
        out["topology"] = {
            "servers": list(topo.servers),
            "policy": topo.config.policy,
            "failover": topo.config.failover,
            "admission_rate": topo.config.admission_rate,
            "admission_burst": topo.config.admission_burst,
            "probe_period": topo.config.probe_period,
            "stale_grace_periods": topo.config.stale_grace_periods,
            "fail_threshold": topo.config.fail_threshold,
            "probation": topo.config.probation,
        }
    return out


def _topology_from_dict(data: dict) -> FleetTopology:
    """Rebuild a fleet topology block, rejecting unknown/typoed keys."""
    _reject_unknown(data, TOPOLOGY_KEYS, "topology")
    servers = data.get("servers")
    if not isinstance(servers, (list, tuple)) or not servers:
        raise ValueError(
            f"topology.servers: expected a non-empty list of names, got {servers!r}"
        )
    kwargs: dict = {}
    for key in ("policy",):
        if key in data:
            kwargs[key] = str(data[key])
    for key in ("failover",):
        if key in data:
            kwargs[key] = bool(data[key])
    for key in ("admission_rate", "admission_burst", "probe_period",
                "stale_grace_periods", "probation"):
        if key in data:
            kwargs[key] = float(data[key])
    if "fail_threshold" in data:
        kwargs["fail_threshold"] = int(data["fail_threshold"])
    return FleetTopology(
        servers=tuple(str(s) for s in servers), config=FleetConfig(**kwargs)
    )


def scenario_from_dict(data: dict) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    Every key is checked against :data:`KNOWN_KEYS` (and the nested
    ``device`` / ``gpu`` blocks against theirs): a typoed field raises a
    ``ValueError`` naming it and listing the valid fields, rather than
    silently falling back to a default.  ``network`` / ``load`` accept
    either flat phase rows or a generator dict from the extended
    scenario language (lowered via :mod:`repro.search.compiler`).
    """
    _reject_unknown(data, KNOWN_KEYS, "scenario config")
    controllers = extended_controllers()
    name = data.get("controller", "FrameFeedback")
    if name not in controllers:
        raise ValueError(
            f"unknown controller {name!r}; available: {sorted(controllers)}"
        )

    dev = data.get("device", {})
    _reject_unknown(dev, DEVICE_KEYS, "device")
    profile = DEVICE_PROFILES[dev.get("profile", "pi4b_r1_2")]
    model = MODEL_ZOO[dev.get("model", "mobilenet_v3_small")]
    device = DeviceConfig(
        name=dev.get("name", "pi"),
        profile=profile,
        model=model,
        frame_spec=FrameSpec(
            resolution=int(dev.get("resolution", 224)),
            jpeg_quality=float(dev.get("jpeg_quality", 85.0)),
        ),
        frame_rate=float(dev.get("frame_rate", 30.0)),
        deadline=float(dev.get("deadline", 0.25)),
        measure_period=float(dev.get("measure_period", 1.0)),
        t_window_buckets=int(dev.get("t_window_buckets", 3)),
        total_frames=int(dev.get("total_frames", 4000)),
    )

    gpu_cfg = data.get("gpu", {})
    _reject_unknown(gpu_cfg, GPU_KEYS, "gpu")
    gpu = GpuBatchModel(
        base_latency=float(gpu_cfg.get("base_latency", GpuBatchModel.base_latency)),
        per_item=float(gpu_cfg.get("per_item", GpuBatchModel.per_item)),
        jitter_sigma=float(gpu_cfg.get("jitter_sigma", GpuBatchModel.jitter_sigma)),
    )

    network: Optional[NetworkSchedule] = None
    if data.get("network") is not None:
        network = NetworkSchedule.from_rows(_schedule_rows(data, "network"))
    load: Optional[LoadSchedule] = None
    if data.get("load") is not None:
        load = LoadSchedule.from_rows(_schedule_rows(data, "load"))

    topology: Optional[FleetTopology] = None
    if data.get("topology") is not None:
        topology = _topology_from_dict(data["topology"])

    return Scenario(
        controller_factory=controllers[name],
        device=device,
        network=network,
        load=load,
        duration=float(data["duration"]) if "duration" in data else None,
        seed=int(data.get("seed", 0)),
        gpu_model=gpu,
        batch_policy=BatchPolicy(data.get("batch_policy", "fifo")),
        uplink_queue_bytes=float(data.get("uplink_queue_bytes", 131_072.0)),
        topology=topology,
    )
