"""Scenario (de)serialization: experiments as shareable JSON artifacts.

Only declarative pieces serialize — device settings, schedules, seed,
GPU model, batching policy.  The controller is referenced by *name*
(resolved through the same registry the experiment harness uses), so a
config file fully determines a run:

.. code-block:: json

    {
      "controller": "FrameFeedback",
      "seed": 3,
      "device": {"total_frames": 4000, "frame_rate": 30.0},
      "network": [[0, 10, 0], [30, 4, 0]],
      "load": [[0, 0], [10, 90]]
    }
"""

from __future__ import annotations

from typing import Optional

from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario
from repro.experiments.standard import extended_controllers
from repro.models.device_profiles import DEVICE_PROFILES
from repro.models.frames import FrameSpec
from repro.models.latency import GpuBatchModel
from repro.models.zoo import MODEL_ZOO
from repro.netem.schedule import NetworkSchedule
from repro.server.batching import BatchPolicy
from repro.workloads.loadgen import LoadSchedule


def scenario_to_dict(scenario: Scenario, controller_name: str) -> dict:
    """Serialize the declarative parts of a scenario.

    ``controller_name`` must be a registry name (the factory itself is
    not serializable).
    """
    if controller_name not in extended_controllers():
        raise ValueError(
            f"unknown controller {controller_name!r}; "
            f"available: {sorted(extended_controllers())}"
        )
    d = scenario.device
    out: dict = {
        "controller": controller_name,
        "seed": scenario.seed,
        "batch_policy": scenario.batch_policy.value,
        "uplink_queue_bytes": scenario.uplink_queue_bytes,
        "gpu": {
            "base_latency": scenario.gpu_model.base_latency,
            "per_item": scenario.gpu_model.per_item,
            "jitter_sigma": scenario.gpu_model.jitter_sigma,
        },
        "device": {
            "name": d.name,
            "profile": d.profile.name,
            "model": d.model.name,
            "frame_rate": d.frame_rate,
            "deadline": d.deadline,
            "measure_period": d.measure_period,
            "t_window_buckets": d.t_window_buckets,
            "total_frames": d.total_frames,
            "resolution": d.frame_spec.resolution,
            "jpeg_quality": d.frame_spec.jpeg_quality,
        },
    }
    if scenario.duration is not None:
        out["duration"] = scenario.duration
    if scenario.network is not None:
        out["network"] = [
            [p.start, p.conditions.bandwidth, p.conditions.loss * 100.0]
            for p in scenario.network.phases
        ]
    if scenario.load is not None:
        out["load"] = [[p.start, p.rate] for p in scenario.load.phases]
    return out


def scenario_from_dict(data: dict) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    controllers = extended_controllers()
    name = data.get("controller", "FrameFeedback")
    if name not in controllers:
        raise ValueError(
            f"unknown controller {name!r}; available: {sorted(controllers)}"
        )

    dev = data.get("device", {})
    profile = DEVICE_PROFILES[dev.get("profile", "pi4b_r1_2")]
    model = MODEL_ZOO[dev.get("model", "mobilenet_v3_small")]
    device = DeviceConfig(
        name=dev.get("name", "pi"),
        profile=profile,
        model=model,
        frame_spec=FrameSpec(
            resolution=int(dev.get("resolution", 224)),
            jpeg_quality=float(dev.get("jpeg_quality", 85.0)),
        ),
        frame_rate=float(dev.get("frame_rate", 30.0)),
        deadline=float(dev.get("deadline", 0.25)),
        measure_period=float(dev.get("measure_period", 1.0)),
        t_window_buckets=int(dev.get("t_window_buckets", 3)),
        total_frames=int(dev.get("total_frames", 4000)),
    )

    gpu_cfg = data.get("gpu", {})
    gpu = GpuBatchModel(
        base_latency=float(gpu_cfg.get("base_latency", GpuBatchModel.base_latency)),
        per_item=float(gpu_cfg.get("per_item", GpuBatchModel.per_item)),
        jitter_sigma=float(gpu_cfg.get("jitter_sigma", GpuBatchModel.jitter_sigma)),
    )

    network: Optional[NetworkSchedule] = None
    if "network" in data:
        network = NetworkSchedule.from_rows(
            [tuple(row) for row in data["network"]]
        )
    load: Optional[LoadSchedule] = None
    if "load" in data:
        load = LoadSchedule.from_rows([tuple(row) for row in data["load"]])

    return Scenario(
        controller_factory=controllers[name],
        device=device,
        network=network,
        load=load,
        duration=float(data["duration"]) if "duration" in data else None,
        seed=int(data.get("seed", 0)),
        gpu_model=gpu,
        batch_policy=BatchPolicy(data.get("batch_policy", "fifo")),
        uplink_queue_bytes=float(data.get("uplink_queue_bytes", 131_072.0)),
    )
