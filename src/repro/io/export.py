"""Export run results to CSV/JSON artifacts."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict

from repro.experiments.scenario import RunResult
from repro.metrics.qos import QosReport
from repro.metrics.timeseries import TimeSeries


def timeseries_to_csv(series: TimeSeries, value_name: str = "value") -> str:
    """One series as a two-column CSV string."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["time", value_name])
    for t, v in series:
        writer.writerow([f"{t:.6f}", f"{v:.6f}"])
    return buf.getvalue()


def traces_to_csv(traces: Dict[str, TimeSeries]) -> str:
    """Several aligned series as a wide CSV (shared time column).

    Series are aligned by index; they all come from the same 1 Hz
    measurement loop, so indexes coincide.  Raises if lengths differ.
    """
    lengths = {name: len(s) for name, s in traces.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"series lengths differ: {lengths}")
    names = list(traces)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["time", *names])
    if names:
        first = traces[names[0]]
        columns = [traces[n].values for n in names]
        for i, t in enumerate(first.times):
            writer.writerow(
                [f"{t:.6f}", *(f"{col[i]:.6f}" for col in columns)]
            )
    return buf.getvalue()


def load_timeseries_csv(text: str) -> Dict[str, TimeSeries]:
    """Inverse of :func:`traces_to_csv` / :func:`timeseries_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if not header or header[0] != "time":
        raise ValueError("not a trace CSV (missing 'time' column)")
    names = header[1:]
    out = {name: TimeSeries(name) for name in names}
    for row in reader:
        if not row:
            continue
        t = float(row[0])
        for name, cell in zip(names, row[1:]):
            out[name].append(t, float(cell))
    return out


def _json_safe(value: float) -> "float | None":
    """NaN/inf are not valid JSON: map them to null."""
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def qos_to_dict(qos: QosReport) -> dict:
    """A QoS report as a strict-JSON-ready dict (no NaN/inf)."""
    return {
        "name": qos.name,
        "total_frames": qos.total_frames,
        "successful": qos.successful,
        "timeouts": qos.timeouts,
        "rejected": qos.rejected,
        "dropped_local": qos.dropped_local,
        "mean_throughput": qos.mean_throughput,
        "mean_violation_rate": qos.mean_violation_rate,
        "success_fraction": qos.success_fraction,
        "extras": {k: _json_safe(v) for k, v in qos.extras.items()},
    }


def export_run(result: RunResult, directory: "str | Path") -> Dict[str, Path]:
    """Write a run's artifacts into ``directory``.

    Produces ``traces.csv`` (all per-second series), ``qos.json``
    (counters + extras + attribution rates) and returns the paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    tr = result.traces
    traces = {
        "throughput": tr.throughput,
        "offload_target": tr.offload_target,
        "offload_rate": tr.offload_rate,
        "offload_success": tr.offload_success,
        "local_rate": tr.local_rate,
        "timeout_rate": tr.timeout_rate,
        "timeout_window": tr.timeout_window,
        "error": tr.error,
        "cpu_utilization": tr.cpu_utilization,
    }
    traces_path = directory / "traces.csv"
    traces_path.write_text(traces_to_csv(traces))

    payload = {
        "controller": result.controller_name,
        "seed": result.scenario.seed,
        "elapsed": result.elapsed,
        "gpu_utilization": result.gpu_utilization,
        "background_sent": result.background_sent,
        "background_rejected": result.background_rejected,
        "qos": qos_to_dict(result.qos),
    }
    if result.breakdown is not None and result.elapsed > 0:
        payload["timeout_attribution"] = result.breakdown.cause_rates(
            0.0, result.elapsed
        )
    qos_path = directory / "qos.json"
    qos_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return {"traces": traces_path, "qos": qos_path}
