"""Wall-clock condition schedules for the real-time runtime.

The simulator drives its links through
:class:`~repro.netem.schedule.NetworkSchedule`; this is the same idea
for :class:`~repro.realtime.fakework.FakeRemote` — a background thread
applies :class:`RemoteConditions` phases at wall-clock offsets, so
real-time experiments get reproducible degradation timelines instead
of hand-written ``time.sleep`` choreography.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.realtime.fakework import FakeRemote, RemoteConditions


@dataclass(frozen=True)
class RemotePhase:
    """Conditions in force from ``start`` seconds after install."""

    start: float
    conditions: RemoteConditions

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"phase start must be >= 0, got {self.start}")


class RemoteSchedule:
    """A timeline of remote conditions, driven by a daemon thread."""

    def __init__(self, phases: Sequence[RemotePhase]) -> None:
        if not phases:
            raise ValueError("schedule needs at least one phase")
        ordered = sorted(phases, key=lambda p: p.start)
        if ordered[0].start != 0.0:
            raise ValueError("first phase must start at t=0")
        starts = [p.start for p in ordered]
        if len(set(starts)) != len(starts):
            raise ValueError("duplicate phase start times")
        self.phases: List[RemotePhase] = list(ordered)
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    @classmethod
    def from_rows(cls, rows: Sequence[tuple]) -> "RemoteSchedule":
        """Build from ``(start, latency, jitter, failure_prob)`` rows."""
        return cls(
            [
                RemotePhase(
                    float(start),
                    RemoteConditions(
                        latency=float(latency),
                        jitter=float(jitter),
                        failure_probability=float(fail),
                    ),
                )
                for start, latency, jitter, fail in rows
            ]
        )

    def conditions_at(self, t: float) -> RemoteConditions:
        current = self.phases[0].conditions
        for phase in self.phases:
            if phase.start <= t:
                current = phase.conditions
            else:
                break
        return current

    # ------------------------------------------------------------------
    def install(self, remote: FakeRemote) -> "RemoteSchedule":
        """Start driving ``remote``; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("schedule already installed")
        self._stop.clear()

        def driver() -> None:
            t0 = time.perf_counter()
            remote.set_conditions(self.phases[0].conditions)
            for phase in self.phases[1:]:
                while not self._stop.is_set():
                    remaining = phase.start - (time.perf_counter() - t0)
                    if remaining <= 0:
                        break
                    time.sleep(min(remaining, 0.05))
                if self._stop.is_set():
                    return
                remote.set_conditions(phase.conditions)

        self._thread = threading.Thread(target=driver, name="remote-schedule", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
