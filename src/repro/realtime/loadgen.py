"""Async load generator: hundreds of device clients on one event loop.

Drives N concurrent :class:`~repro.realtime.client.ResilientSocketRemote`
clients against a gateway, each on its own seeded frame cadence, and
rolls the outcome up into the same QoS/taxonomy shape the simulator
emits — so a wall-clock burst and a simulated run are comparable
row-for-row.

Two health signals matter beyond throughput:

* **closed accounting** — every submitted frame reached exactly one
  terminal :class:`~repro.realtime.client.FrameOutcome`;
* **tick jitter** — how late each client's frame tick fired versus its
  intended schedule.  Jitter is the event-loop-starvation canary: if
  the loop can't keep 200 coroutine tickers on schedule, p99 jitter
  blows up long before sockets error.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.qos import QosReport
from repro.realtime.client import FrameOutcome, ResilientSocketRemote
from repro.resilience.config import ResilienceConfig


@dataclass(frozen=True)
class LoadgenConfig:
    """One load burst, fully described."""

    clients: int = 8
    frame_rate: float = 10.0
    deadline: float = 0.25
    duration: float = 3.0
    frame_bytes: int = 2_000
    seed: int = 0
    #: resilience stack for every client (None = wallclock preset)
    resilience: Optional[ResilienceConfig] = None
    tenant_prefix: str = "c"

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.frame_rate <= 0 or self.deadline <= 0 or self.duration <= 0:
            raise ValueError("frame_rate, deadline and duration must be positive")
        if self.frame_bytes <= 0:
            raise ValueError(f"frame_bytes must be positive, got {self.frame_bytes}")


@dataclass
class LoadgenReport:
    """Whole-burst rollup (plus live client handles for invariants)."""

    clients: int
    duration: float
    submitted: int
    outcomes: Dict[str, int]
    taxonomy: Dict[str, int]
    jitter_p50: float
    jitter_p99: float
    jitter_max: float
    breakers_opened: int
    breakers_all_closed: bool
    accounting_closed: bool
    #: the client objects themselves (not serialized; invariant checks
    #: and probes read breaker state/taxonomy off them directly)
    remotes: List[ResilientSocketRemote] = field(default_factory=list, repr=False)

    @property
    def completed(self) -> int:
        return self.outcomes.get("completed", 0)

    @property
    def deadline_violations(self) -> int:
        """Frames that missed their deadline on the offload path."""
        return self.outcomes.get("timeout", 0) + self.outcomes.get("expired", 0)

    @property
    def violation_fraction(self) -> float:
        return self.deadline_violations / self.submitted if self.submitted else 0.0

    def qos(self) -> QosReport:
        """The burst as a :class:`~repro.metrics.qos.QosReport`."""
        return QosReport(
            name="loadgen",
            total_frames=self.submitted,
            successful=self.completed,
            timeouts=self.deadline_violations,
            rejected=self.outcomes.get("rejected", 0)
            + self.outcomes.get("overloaded", 0),
            mean_throughput=self.completed / self.duration,
            mean_violation_rate=self.deadline_violations / self.duration,
            extras={
                "realtime.jitter_p50": self.jitter_p50,
                "realtime.jitter_p99": self.jitter_p99,
                "realtime.jitter_max": self.jitter_max,
                "realtime.breakers_opened": float(self.breakers_opened),
                "realtime.fallback_local": float(
                    self.outcomes.get("fallback_local", 0)
                ),
            },
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "duration": self.duration,
            "submitted": self.submitted,
            "outcomes": dict(sorted(self.outcomes.items())),
            "taxonomy": {k: v for k, v in sorted(self.taxonomy.items()) if v},
            "jitter_p50": self.jitter_p50,
            "jitter_p99": self.jitter_p99,
            "jitter_max": self.jitter_max,
            "breakers_opened": self.breakers_opened,
            "breakers_all_closed": self.breakers_all_closed,
            "accounting_closed": self.accounting_closed,
        }


async def _client_loop(
    remote: ResilientSocketRemote,
    start: float,
    phase: float,
    period: float,
    duration: float,
    jitter_sink: List[float],
) -> None:
    """One device: submit on a fixed cadence, record tick lateness."""
    loop = asyncio.get_running_loop()
    next_tick = start + phase
    end = start + duration
    inflight: set = set()
    while next_tick < end:
        delay = next_tick - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        jitter_sink.append(max(loop.time() - next_tick, 0.0))
        task = asyncio.ensure_future(remote.submit_frame())
        inflight.add(task)
        task.add_done_callback(inflight.discard)
        next_tick += period
    if inflight:
        await asyncio.gather(*inflight, return_exceptions=True)


async def run_loadgen(
    config: LoadgenConfig,
    address: Tuple[str, int],
    remotes: Optional[List[ResilientSocketRemote]] = None,
) -> LoadgenReport:
    """Run one burst against ``address``; returns the rollup.

    Pass ``remotes`` to reuse pre-built clients (the chaos runner does,
    so it can snapshot breaker state mid-run); otherwise one client per
    tenant is built here.  Client start phases are seeded so two bursts
    with the same config offer the same arrival pattern.
    """
    loop = asyncio.get_running_loop()
    period = 1.0 / config.frame_rate
    rng = np.random.default_rng(config.seed)
    phases = rng.uniform(0.0, period, size=config.clients)
    if remotes is None:
        remotes = [
            ResilientSocketRemote(
                address,
                deadline=config.deadline,
                config=config.resilience or ResilienceConfig.wallclock(),
                tenant=f"{config.tenant_prefix}{i}",
                frame_bytes=config.frame_bytes,
            )
            for i in range(config.clients)
        ]
    if len(remotes) != config.clients:
        raise ValueError(
            f"got {len(remotes)} remotes for {config.clients} clients"
        )
    jitter: List[float] = []
    start = loop.time()
    try:
        await asyncio.gather(
            *(
                _client_loop(
                    remotes[i], start, float(phases[i]), period, config.duration, jitter
                )
                for i in range(config.clients)
            )
        )
    finally:
        for remote in remotes:
            await remote.close()
    return summarize(config, remotes, jitter)


def summarize(
    config: LoadgenConfig,
    remotes: List[ResilientSocketRemote],
    jitter: List[float],
) -> LoadgenReport:
    """Roll per-client counters up into one report."""
    outcomes: Dict[str, int] = {}
    taxonomy: Dict[str, int] = {}
    submitted = 0
    opened = 0
    all_closed = True
    closed_accounting = True
    for remote in remotes:
        submitted += remote.submitted
        closed_accounting = closed_accounting and remote.accounting_closed
        opened += remote.breaker.opened_count
        all_closed = all_closed and remote.breaker.is_closed
        for outcome, n in remote.counts.items():
            outcomes[outcome.value] = outcomes.get(outcome.value, 0) + n
        for kind, n in remote.taxonomy.as_dict().items():
            taxonomy[kind] = taxonomy.get(kind, 0) + n
    arr = np.asarray(jitter, dtype=float) if jitter else np.zeros(1)
    return LoadgenReport(
        clients=config.clients,
        duration=config.duration,
        submitted=submitted,
        outcomes=outcomes,
        taxonomy=taxonomy,
        jitter_p50=float(np.percentile(arr, 50.0)),
        jitter_p99=float(np.percentile(arr, 99.0)),
        jitter_max=float(arr.max()),
        breakers_opened=opened,
        breakers_all_closed=all_closed,
        accounting_closed=closed_accounting,
        remotes=remotes,
    )
