"""Wall-clock runtime: the controller outside the simulator.

The paper's system runs on real threads and sockets.  This package
provides a minimal real-time harness — a frame ticker, a CPU-bound
local worker, a thread-pool "offload" path with injectable latency and
loss, and a 1 Hz measurement loop — that drives the *same*
:class:`~repro.control.base.Controller` objects as the simulator.  It
exists to demonstrate (and test) that nothing in the control layer
depends on virtual time.
"""

from repro.realtime.aio import AsyncFakeRemote, AsyncLoopResult, AsyncRealTimeLoop
from repro.realtime.fakework import FakeRemote, RemoteConditions, calibrated_spin
from repro.realtime.netserver import InferenceServer, SocketRemote
from repro.realtime.runtime import RealTimeLoop, RealTimeResult
from repro.realtime.schedule import RemotePhase, RemoteSchedule

__all__ = [
    "AsyncFakeRemote",
    "AsyncLoopResult",
    "AsyncRealTimeLoop",
    "FakeRemote",
    "InferenceServer",
    "RealTimeLoop",
    "RealTimeResult",
    "RemoteConditions",
    "RemotePhase",
    "RemoteSchedule",
    "SocketRemote",
    "calibrated_spin",
]
