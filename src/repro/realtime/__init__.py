"""Wall-clock runtime: the controller outside the simulator.

The paper's system runs on real threads and sockets.  This package
provides the real-time harnesses — a frame ticker, a CPU-bound local
worker, a thread-pool "offload" path with injectable latency and loss,
and a 1 Hz measurement loop — that drive the *same*
:class:`~repro.control.base.Controller` objects as the simulator.  It
exists to demonstrate (and test) that nothing in the control layer
depends on virtual time.

Two serving tiers:

* :mod:`~repro.realtime.netserver` — the v1 threaded demo server
  (minimal wire protocol, no admission control);
* :mod:`~repro.realtime.gateway` — the asyncio gateway (wire protocol
  v2, per-tenant admission, deadline-aware shedding, chaos knobs) with
  its resilient client (:mod:`~repro.realtime.client`), async load
  generator (:mod:`~repro.realtime.loadgen`), wall-clock fault
  injection (:mod:`~repro.realtime.chaos`) and sim-twin validation
  (:mod:`~repro.realtime.twin`).  See ``docs/realtime.md``.
"""

from repro.realtime.aio import AsyncFakeRemote, AsyncLoopResult, AsyncRealTimeLoop
from repro.realtime.client import (
    AsyncSocketRemote,
    FrameOutcome,
    ResilientSocketRemote,
)
from repro.realtime.fakework import FakeRemote, RemoteConditions, calibrated_spin
from repro.realtime.gateway import GatewayConfig, GatewayStats, InferenceGateway
from repro.realtime.netserver import InferenceServer, SocketRemote
from repro.realtime.runtime import RealTimeLoop, RealTimeResult
from repro.realtime.schedule import RemotePhase, RemoteSchedule

__all__ = [
    "AsyncFakeRemote",
    "AsyncLoopResult",
    "AsyncRealTimeLoop",
    "AsyncSocketRemote",
    "FakeRemote",
    "FrameOutcome",
    "GatewayConfig",
    "GatewayStats",
    "InferenceGateway",
    "InferenceServer",
    "RealTimeLoop",
    "RealTimeResult",
    "RemoteConditions",
    "RemotePhase",
    "RemoteSchedule",
    "ResilientSocketRemote",
    "SocketRemote",
    "calibrated_spin",
]
