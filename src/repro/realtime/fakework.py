"""Stand-in workloads for the wall-clock runtime.

* :func:`calibrated_spin` — a CPU-bound kernel (small matmuls) timed to
  a target latency, standing in for local TFLite inference;
* :class:`FakeRemote` — an "edge server" whose response time and
  failure probability are injectable, standing in for the offload
  path's network + server latency.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
import numpy as np


def calibrated_spin(target_seconds: float, _state: dict = {}) -> float:
    """Burn roughly ``target_seconds`` of CPU; returns actual elapsed.

    Calibrates ops/second once per process on first call (kept in the
    default-arg cache, which is intentional shared state here).
    """
    if target_seconds < 0:
        raise ValueError(f"negative target {target_seconds}")
    if "ops_per_sec" not in _state:
        a = np.random.default_rng(0).random((64, 64))
        t0 = time.perf_counter()
        n = 0
        while time.perf_counter() - t0 < 0.05:
            a = a @ a * 1e-3 + 1.0
            n += 1
        _state["ops_per_sec"] = max(n / (time.perf_counter() - t0), 1.0)
        _state["matrix"] = a
    start = time.perf_counter()
    remaining_ops = int(target_seconds * _state["ops_per_sec"])
    a = _state["matrix"]
    for _ in range(max(remaining_ops, 0)):
        a = a @ a * 1e-3 + 1.0
    _state["matrix"] = a
    return time.perf_counter() - start


@dataclass
class RemoteConditions:
    """Injectable offload-path behaviour (the NetEm analogue)."""

    latency: float = 0.06
    jitter: float = 0.01
    failure_probability: float = 0.0


class FakeRemote:
    """A thread-safe fake edge server for the real-time loop.

    ``submit`` blocks the calling worker thread for the configured
    latency and returns success/failure — the caller overlays its own
    deadline, exactly like the real offload client.
    """

    def __init__(self, seed: int = 0) -> None:
        self._conditions = RemoteConditions()
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(seed)

    @property
    def conditions(self) -> RemoteConditions:
        with self._lock:
            return self._conditions

    def set_conditions(self, conditions: RemoteConditions) -> None:
        with self._lock:
            self._conditions = conditions

    def submit(self) -> bool:
        with self._lock:
            cond = self._conditions
            delay = max(0.0, cond.latency + self._rng.normal(0.0, cond.jitter))
            failed = self._rng.random() < cond.failure_probability
        time.sleep(delay)
        return not failed
