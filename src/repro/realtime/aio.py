"""Asyncio runtime: the closed loop on a cooperative event loop.

Third runtime in the family (deterministic simulator, thread-based
wall clock, and now asyncio) — all three drive the *same*
:class:`~repro.control.base.Controller` objects through the same
:class:`~repro.control.base.Measurement` seam.  The asyncio variant is
the natural shape for an edge device whose "offloading" is an HTTP/2
or WebSocket client: one event loop, no thread pools, thousands of
in-flight requests for free.

The remote side is pluggable: any ``async def submit() -> bool``
callable works.  :class:`AsyncFakeRemote` mirrors
:class:`~repro.realtime.fakework.FakeRemote` with ``asyncio.sleep``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, List, Optional

import numpy as np

from repro.control.base import Controller, Measurement
from repro.device.splitter import TokenBucketSplitter
from repro.metrics.counters import WindowedRate
from repro.realtime.fakework import RemoteConditions


class AsyncFakeRemote:
    """Awaitable fake edge server with injectable conditions."""

    def __init__(self, seed: int = 0) -> None:
        self.conditions = RemoteConditions()
        self._rng = np.random.default_rng(seed)

    async def submit(self) -> bool:
        cond = self.conditions
        delay = max(0.0, cond.latency + float(self._rng.normal(0.0, cond.jitter)))
        await asyncio.sleep(delay)
        return bool(self._rng.random() >= cond.failure_probability)


@dataclass
class AsyncLoopResult:
    """Per-period traces from one asyncio run."""

    times: List[float] = field(default_factory=list)
    offload_target: List[float] = field(default_factory=list)
    throughput: List[float] = field(default_factory=list)
    timeout_rate: List[float] = field(default_factory=list)


class AsyncRealTimeLoop:
    """The device loop as coroutines."""

    def __init__(
        self,
        controller: Controller,
        submit: Optional[Callable[[], Awaitable[bool]]] = None,
        frame_rate: float = 30.0,
        deadline: float = 0.25,
        local_latency: float = 0.03,
        measure_period: float = 1.0,
        t_window_buckets: int = 3,
        remote: Optional[object] = None,
    ) -> None:
        """``submit`` is any ``async () -> bool``; alternatively pass
        ``remote=`` an object with ``async submit_frame() -> FrameOutcome``
        (e.g. :class:`~repro.realtime.client.ResilientSocketRemote`) and
        the loop also routes breaker fallbacks onto the local pipeline
        instead of counting them as plain offload failures."""
        if frame_rate <= 0 or deadline <= 0 or measure_period <= 0:
            raise ValueError("rates, deadline and period must be positive")
        if submit is None and remote is None:
            raise ValueError("need either a submit callable or a remote")
        self.controller = controller
        self.remote = remote
        self.submit = submit if submit is not None else remote.submit
        self.frame_rate = frame_rate
        self.deadline = deadline
        self.local_latency = local_latency
        self.measure_period = measure_period
        self.splitter = TokenBucketSplitter(frame_rate)
        self.splitter.set_target(controller.initial_target(frame_rate))
        self._t_window = WindowedRate(t_window_buckets)
        self._local_busy = False
        self._counts = {
            "attempts": 0,
            "success": 0,
            "timeouts": 0,
            "local": 0,
            "fallback_dropped": 0,
        }

    # ------------------------------------------------------------------
    async def run(self, duration: float) -> AsyncLoopResult:
        result = AsyncLoopResult()
        loop = asyncio.get_running_loop()
        start = loop.time()
        ticker = asyncio.create_task(self._ticker(loop, start, duration))
        try:
            while loop.time() - start < duration:
                await asyncio.sleep(self.measure_period)
                self._measure_step(result, loop.time() - start)
        finally:
            ticker.cancel()
            try:
                await ticker
            except asyncio.CancelledError:
                pass
        return result

    # ------------------------------------------------------------------
    async def _ticker(self, loop, start: float, duration: float) -> None:
        period = 1.0 / self.frame_rate
        next_tick = loop.time() + period
        pending = set()
        try:
            while loop.time() - start < duration:
                await asyncio.sleep(max(0.0, next_tick - loop.time()))
                next_tick += period
                if self.splitter.route():
                    self._counts["attempts"] += 1
                    task = asyncio.create_task(self._offload_one())
                    pending.add(task)
                    task.add_done_callback(pending.discard)
                elif not self._local_busy:
                    task = asyncio.create_task(self._local_one())
                    pending.add(task)
                    task.add_done_callback(pending.discard)
        finally:
            for task in pending:
                task.cancel()

    async def _offload_one(self) -> None:
        if self.remote is not None:
            await self._offload_one_resilient()
            return
        try:
            ok = await asyncio.wait_for(self.submit(), timeout=self.deadline)
        except (asyncio.TimeoutError, OSError):
            ok = False
        if ok:
            self._counts["success"] += 1
        else:
            self._counts["timeouts"] += 1
            self._t_window.record(1)

    async def _offload_one_resilient(self) -> None:
        """Offload through a resilient remote (deadline owned there).

        A breaker fallback re-routes the frame to the local pipeline —
        the frame is *saved*, not failed, so the controller never sees
        it as a timeout (the sim's breaker has the same contract).
        """
        from repro.realtime.client import FrameOutcome

        outcome = await self.remote.submit_frame()
        if outcome is FrameOutcome.COMPLETED:
            self._counts["success"] += 1
        elif outcome is FrameOutcome.FALLBACK_LOCAL:
            if self._local_busy:
                self._counts["fallback_dropped"] += 1
            else:
                await self._local_one()
        else:
            self._counts["timeouts"] += 1
            self._t_window.record(1)

    async def _local_one(self) -> None:
        # cooperative stand-in: local inference yields the loop (a real
        # deployment would run the model in an executor)
        self._local_busy = True
        try:
            await asyncio.sleep(self.local_latency)
            self._counts["local"] += 1
        finally:
            self._local_busy = False

    def _measure_step(self, result: AsyncLoopResult, now: float) -> None:
        period = self.measure_period
        c = self._counts
        self._t_window.close_bucket(period)
        measurement = Measurement(
            time=now,
            frame_rate=self.frame_rate,
            offload_target=self.splitter.target,
            offload_rate=c["attempts"] / period,
            offload_success_rate=c["success"] / period,
            timeout_rate=self._t_window.average,
            timeout_rate_last=c["timeouts"] / period,
            local_rate=c["local"] / period,
            throughput=(c["success"] + c["local"]) / period,
        )
        self.splitter.set_target(self.controller.update(measurement))
        result.times.append(now)
        result.offload_target.append(self.splitter.target)
        result.throughput.append(measurement.throughput)
        result.timeout_rate.append(measurement.timeout_rate_last)
        self._counts = {k: 0 for k in c}
