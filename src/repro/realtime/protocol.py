"""Wire protocol v2 for the asyncio inference gateway.

The v1 protocol (:mod:`repro.realtime.netserver`) is a bare 4-byte
length prefix and a one-byte verdict — enough for a demo, not for an
enforcement point: the server cannot tell tenants apart (so it cannot
meter them), cannot tell the client *why* a frame was shed, and cannot
schedule the client's comeback.  v2 closes those gaps while keeping
the length-prefixed-frames-over-TCP shape:

request (one frame)::

    magic      1 byte   0xF2 (protocol discriminator; a v1 client's
                        length prefix can never start with 0xF2 for
                        payloads under MAX_PAYLOAD, so a gateway can
                        reject v1 traffic deterministically)
    tenant_len 1 byte   length of the tenant id (1..64 ASCII bytes)
    deadline   u32 BE   remaining deadline budget in microseconds at
                        send time (0 = no deadline attached); lets the
                        gateway shed frames that are already doomed
    length     u32 BE   payload length (<= MAX_PAYLOAD)
    tenant     bytes    tenant id
    payload    bytes    the "JPEG" (content ignored, size matters)

response (one per request, in request order per connection)::

    status      1 byte  see STATUS_* below (v1's '+'/'-' preserved)
    retry_after u32 BE  comeback hint in microseconds (0 = none);
                        meaningful on OVERLOADED, advisory elsewhere

Connections are persistent: a client may send many frames over one
connection; the gateway answers each exactly once, in order.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import Optional

#: protocol discriminator byte opening every v2 request
MAGIC = 0xF2

#: maximum accepted payload (shared sanity bound with v1, ~1 MiB)
MAX_PAYLOAD = 1 << 20

#: maximum tenant-id length in bytes
MAX_TENANT = 64

#: request completed; payload classified within its deadline budget
STATUS_OK = b"+"
#: dropped at batch formation (v1-compatible bare rejection)
STATUS_REJECTED = b"-"
#: shed by per-tenant admission or queue overflow; retry_after is the
#: gateway's estimate of when capacity frees up
STATUS_OVERLOADED = b"!"
#: shed because the frame's own deadline budget had already expired
#: when the GPU got to it — an answer nobody could use
STATUS_EXPIRED = b"x"

ALL_STATUSES = (STATUS_OK, STATUS_REJECTED, STATUS_OVERLOADED, STATUS_EXPIRED)

_REQ_HEAD = struct.Struct(">BBII")  # magic, tenant_len, deadline_us, length
_RESP = struct.Struct(">cI")  # status, retry_after_us

#: microseconds per second (deadline/retry-after wire unit)
_US = 1_000_000


class ProtocolError(ValueError):
    """A malformed v2 frame (bad magic, oversized field, short read)."""


@dataclass(frozen=True)
class Request:
    """One decoded request frame (payload bytes are not retained)."""

    tenant: str
    payload_bytes: int
    #: remaining deadline budget at send time (seconds; None = no hint)
    deadline: Optional[float]


@dataclass(frozen=True)
class Reply:
    """One decoded response frame."""

    status: bytes
    #: comeback hint in seconds (None when the server sent 0)
    retry_after: Optional[float]

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def encode_request(tenant: str, payload: bytes, deadline: Optional[float]) -> bytes:
    """Serialize one request frame."""
    raw_tenant = tenant.encode("ascii")
    if not 1 <= len(raw_tenant) <= MAX_TENANT:
        raise ProtocolError(f"tenant id must be 1..{MAX_TENANT} bytes, got {tenant!r}")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload {len(payload)} exceeds MAX_PAYLOAD {MAX_PAYLOAD}")
    deadline_us = 0
    if deadline is not None:
        if deadline <= 0:
            raise ProtocolError(f"deadline must be positive, got {deadline}")
        deadline_us = min(int(deadline * _US), 0xFFFFFFFF)
    head = _REQ_HEAD.pack(MAGIC, len(raw_tenant), deadline_us, len(payload))
    return head + raw_tenant + payload


def encode_reply(status: bytes, retry_after: Optional[float] = None) -> bytes:
    """Serialize one response frame."""
    if status not in ALL_STATUSES:
        raise ProtocolError(f"unknown status byte {status!r}")
    retry_us = 0
    if retry_after is not None and retry_after > 0:
        retry_us = min(int(retry_after * _US), 0xFFFFFFFF)
    return _RESP.pack(status, retry_us)


def decode_reply(raw: bytes) -> Reply:
    """Parse one response frame."""
    if len(raw) != _RESP.size:
        raise ProtocolError(f"short reply: {len(raw)} bytes")
    status, retry_us = _RESP.unpack(raw)
    if status not in ALL_STATUSES:
        raise ProtocolError(f"unknown status byte {status!r}")
    return Reply(status=status, retry_after=retry_us / _US if retry_us else None)


REPLY_SIZE = _RESP.size
REQUEST_HEAD_SIZE = _REQ_HEAD.size


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read and validate one request frame; None on clean EOF.

    Raises :class:`ProtocolError` on a malformed frame.  The payload is
    drained but not retained (only its size carries information).
    """
    try:
        head = await reader.readexactly(REQUEST_HEAD_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(f"truncated request header ({len(exc.partial)} bytes)")
    magic, tenant_len, deadline_us, length = _REQ_HEAD.unpack(head)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic byte 0x{magic:02x} (expected 0x{MAGIC:02x})")
    if not 1 <= tenant_len <= MAX_TENANT:
        raise ProtocolError(f"bad tenant length {tenant_len}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"payload {length} exceeds MAX_PAYLOAD {MAX_PAYLOAD}")
    try:
        raw_tenant = await reader.readexactly(tenant_len)
        remaining = length
        while remaining:
            chunk = await reader.read(min(remaining, 1 << 16))
            if not chunk:
                raise ProtocolError("EOF inside payload")
            remaining -= len(chunk)
    except asyncio.IncompleteReadError:
        raise ProtocolError("EOF inside request body")
    try:
        tenant = raw_tenant.decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError(f"non-ASCII tenant id {raw_tenant!r}")
    return Request(
        tenant=tenant,
        payload_bytes=length,
        deadline=deadline_us / _US if deadline_us else None,
    )


async def read_reply(reader: asyncio.StreamReader) -> Reply:
    """Read one response frame (raises ProtocolError on EOF/garbage)."""
    try:
        raw = await reader.readexactly(REPLY_SIZE)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(f"connection closed mid-reply ({len(exc.partial)} bytes)")
    return decode_reply(raw)
