"""A real TCP inference server + client for the wall-clock runtime.

This is the closest analogue of the paper's deployment this repository
can run without hardware: a threaded TCP server implementing the §IV-A
adaptive batching discipline over actual sockets on localhost, and a
socket client that plugs into :class:`~repro.realtime.runtime
.RealTimeLoop` in place of :class:`~repro.realtime.fakework.FakeRemote`.

Wire protocol (deliberately minimal):

* request:  4-byte big-endian payload length, then the payload (the
  "JPEG"); the payload content is ignored, only its size matters;
* response: 1 byte — ``b"+"`` completed, ``b"-"`` rejected.

The server batches exactly like the simulator's
:class:`~repro.server.batching.AdaptiveBatcher`: requests queue while a
"GPU" (a calibrated sleep) executes the current batch; the next batch
takes up to ``batch_limit`` queued requests and rejects the rest.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

_LEN = struct.Struct(">I")

#: maximum accepted payload (sanity bound, ~1 MiB)
MAX_PAYLOAD = 1 << 20


def _recv_exact(conn: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes or None on EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


@dataclass
class ServerStats:
    received: int = 0
    completed: int = 0
    rejected: int = 0
    batches: int = 0


class InferenceServer:
    """Threaded TCP server with adaptive batching."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_limit: int = 15,
        base_latency: float = 0.022,
        per_item: float = 0.0055,
    ) -> None:
        if batch_limit < 1:
            raise ValueError(f"batch limit must be >= 1, got {batch_limit}")
        self.batch_limit = batch_limit
        self.base_latency = base_latency
        self.per_item = per_item
        self.stats = ServerStats()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self._sock.settimeout(0.2)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._queue: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._accept_loop, name="srv-accept", daemon=True),
            threading.Thread(target=self._gpu_loop, name="srv-gpu", daemon=True),
        ]

    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        for t in self._threads:
            t.join(timeout=2.0)
        self._sock.close()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._read_request, args=(conn,), daemon=True
            ).start()

    def _read_request(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(5.0)
            header = _recv_exact(conn, _LEN.size)
            if header is None:
                conn.close()
                return
            (length,) = _LEN.unpack(header)
            if length > MAX_PAYLOAD:
                conn.sendall(b"-")
                conn.close()
                return
            if _recv_exact(conn, length) is None:
                conn.close()
                return
            with self._lock:
                self.stats.received += 1
                self._queue.append(conn)
        except OSError:
            conn.close()

    def _gpu_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                batch = self._queue[: self.batch_limit]
                rejected = self._queue[self.batch_limit :]
                self._queue = []
            for conn in rejected:
                self.stats.rejected += 1
                self._reply(conn, b"-")
            if not batch:
                time.sleep(0.002)
                continue
            # the "GPU": calibrated sleep, affine in batch size
            time.sleep(self.base_latency + self.per_item * len(batch))
            self.stats.batches += 1
            for conn in batch:
                self.stats.completed += 1
                self._reply(conn, b"+")

    @staticmethod
    def _reply(conn: socket.socket, payload: bytes) -> None:
        try:
            conn.sendall(payload)
        except OSError:
            pass
        finally:
            conn.close()


class SocketRemote:
    """Drop-in for :class:`FakeRemote`: offload over a real socket.

    Each ``submit()`` opens one connection, ships ``frame_bytes`` of
    payload, and waits (up to ``timeout``) for the verdict — one
    connection per frame keeps the client trivially thread-safe for
    the runtime's worker pool.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        frame_bytes: int = 11_700,
        timeout: float = 1.0,
    ) -> None:
        if frame_bytes <= 0:
            raise ValueError(f"frame bytes must be positive, got {frame_bytes}")
        self.address = address
        self.frame_bytes = frame_bytes
        self.timeout = timeout
        self._payload = b"\x00" * frame_bytes

    def submit(self) -> bool:
        try:
            with socket.create_connection(self.address, timeout=self.timeout) as conn:
                conn.sendall(_LEN.pack(self.frame_bytes) + self._payload)
                verdict = _recv_exact(conn, 1)
                return verdict == b"+"
        except OSError:
            return False
