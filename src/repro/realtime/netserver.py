"""A real TCP inference server + client for the wall-clock runtime.

This is the closest analogue of the paper's deployment this repository
can run without hardware: a threaded TCP server implementing the §IV-A
adaptive batching discipline over actual sockets on localhost, and a
socket client that plugs into :class:`~repro.realtime.runtime
.RealTimeLoop` in place of :class:`~repro.realtime.fakework.FakeRemote`.

Wire protocol (deliberately minimal):

* request:  4-byte big-endian payload length, then the payload (the
  "JPEG"); the payload content is ignored, only its size matters;
* response: 1 byte — ``b"+"`` completed, ``b"-"`` rejected.

The server batches exactly like the simulator's
:class:`~repro.server.batching.AdaptiveBatcher`: requests queue while a
"GPU" (a calibrated sleep) executes the current batch; the next batch
takes up to ``batch_limit`` queued requests and rejects the rest.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import List, Optional, Tuple

_LEN = struct.Struct(">I")

#: maximum accepted payload (sanity bound, ~1 MiB)
MAX_PAYLOAD = 1 << 20


def _recv_exact(
    conn: socket.socket, n: int, deadline: Optional[float] = None
) -> Optional[bytes]:
    """Read exactly ``n`` bytes or None on EOF.

    ``deadline`` is an absolute ``time.monotonic()`` instant bounding
    the *whole* read: each ``recv`` gets only the remaining budget, so
    a drip-feeding client (one byte per almost-timeout) cannot hold a
    handler thread forever the way a fixed per-``recv`` timeout allows.
    Raises ``socket.timeout`` when the budget runs out.
    """
    chunks = []
    remaining = n
    while remaining:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise socket.timeout("read deadline exhausted")
            conn.settimeout(budget)
        chunk = conn.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class ServerStats:
    """Thread-safe counters: accept, handler and GPU threads all bump.

    Plain ``int`` attribute reads stay lock-free (a torn read of an
    ``int`` is impossible in CPython); every *write* goes through
    :meth:`bump` so no increment is ever lost between threads.
    """

    FIELDS = ("received", "completed", "rejected", "batches")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, n: int = 1) -> None:
        if name not in self.FIELDS:
            raise ValueError(f"unknown counter {name!r}")
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of every counter."""
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


class InferenceServer:
    """Threaded TCP server with adaptive batching."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_limit: int = 15,
        base_latency: float = 0.022,
        per_item: float = 0.0055,
        read_timeout: float = 5.0,
    ) -> None:
        if batch_limit < 1:
            raise ValueError(f"batch limit must be >= 1, got {batch_limit}")
        if read_timeout <= 0:
            raise ValueError(f"read_timeout must be positive, got {read_timeout}")
        self.batch_limit = batch_limit
        self.base_latency = base_latency
        self.per_item = per_item
        self.read_timeout = read_timeout
        self.stats = ServerStats()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self._sock.settimeout(0.2)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._queue: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._handlers: List[threading.Thread] = []
        self._threads = [
            threading.Thread(target=self._accept_loop, name="srv-accept", daemon=True),
            threading.Thread(target=self._gpu_loop, name="srv-gpu", daemon=True),
        ]

    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: join every worker, drain the queue.

        Handler threads are bounded by the read deadline, so the joins
        terminate; queued-but-unserved requests get an explicit ``b"-"``
        instead of a silent reset, keeping accounting closed
        (``completed + rejected == received``) through shutdown.
        """
        self._stop.set()
        for t in self._threads:
            t.join(timeout=2.0)
        with self._lock:
            handlers, self._handlers = self._handlers, []
        for t in handlers:
            t.join(timeout=self.read_timeout + 1.0)
        # only after every handler has quiesced can the queue no longer
        # grow; drain what is left with an explicit rejection
        with self._lock:
            queued, self._queue = self._queue, []
        for conn in queued:
            self.stats.bump("rejected")
            self._reply(conn, b"-")
        self._sock.close()

    close = stop

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            handler = threading.Thread(
                target=self._read_request, args=(conn,), daemon=True
            )
            with self._lock:
                self._handlers.append(handler)
                # opportunistically reap finished handlers so a long-
                # lived server does not accumulate dead thread objects
                self._handlers = [t for t in self._handlers if t.is_alive()]
            handler.start()

    def _read_request(self, conn: socket.socket) -> None:
        try:
            deadline = time.monotonic() + self.read_timeout
            header = _recv_exact(conn, _LEN.size, deadline)
            if header is None:
                conn.close()
                return
            (length,) = _LEN.unpack(header)
            if length > MAX_PAYLOAD:
                # clean protocol-level rejection: count it, answer it
                self.stats.bump("received")
                self.stats.bump("rejected")
                self._reply(conn, b"-")
                return
            if _recv_exact(conn, length, deadline) is None:
                conn.close()
                return
            self.stats.bump("received")
            with self._lock:
                if self._stop.is_set():
                    # raced with shutdown: reply here, the GPU loop is gone
                    self.stats.bump("rejected")
                    self._reply(conn, b"-")
                    return
                self._queue.append(conn)
        except OSError:
            conn.close()

    def _gpu_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                batch = self._queue[: self.batch_limit]
                rejected = self._queue[self.batch_limit :]
                self._queue = []
            for conn in rejected:
                self.stats.bump("rejected")
                self._reply(conn, b"-")
            if not batch:
                time.sleep(0.002)
                continue
            # the "GPU": calibrated sleep, affine in batch size
            time.sleep(self.base_latency + self.per_item * len(batch))
            self.stats.bump("batches")
            for conn in batch:
                self.stats.bump("completed")
                self._reply(conn, b"+")

    @staticmethod
    def _reply(conn: socket.socket, payload: bytes) -> None:
        try:
            conn.sendall(payload)
        except OSError:
            pass
        finally:
            conn.close()


class SocketRemote:
    """Drop-in for :class:`FakeRemote`: offload over a real socket.

    Each ``submit()`` opens one connection, ships ``frame_bytes`` of
    payload, and waits (up to ``timeout``) for the verdict — one
    connection per frame keeps the client trivially thread-safe for
    the runtime's worker pool.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        frame_bytes: int = 11_700,
        timeout: float = 1.0,
    ) -> None:
        if frame_bytes <= 0:
            raise ValueError(f"frame bytes must be positive, got {frame_bytes}")
        self.address = address
        self.frame_bytes = frame_bytes
        self.timeout = timeout
        self._payload = b"\x00" * frame_bytes

    def submit(self) -> bool:
        try:
            with socket.create_connection(self.address, timeout=self.timeout) as conn:
                conn.sendall(_LEN.pack(self.frame_bytes) + self._payload)
                verdict = _recv_exact(conn, 1)
                return verdict == b"+"
        except OSError:
            return False
