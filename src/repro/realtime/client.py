"""Resilient asyncio offload client for the inference gateway.

This is :mod:`repro.resilience` ported onto real sockets: the same
deadline-budgeted hedged retry, the same token-bucket retry budget,
the same :class:`~repro.resilience.breaker.CircuitBreaker` state
machine — every ``now`` fed from ``loop.time()`` instead of simulated
time, exactly the reuse the breaker's design promised ("deliberately
simulation-free — every method takes ``now`` explicitly").

Two layers:

* :class:`AsyncSocketRemote` — a plain wire-protocol-v2 client with a
  small connection pool (persistent connections, one frame in flight
  per connection, stale pooled sockets discarded);
* :class:`ResilientSocketRemote` — the defended path: per-frame
  deadline budget, hedged retransmission gated by the retry budget,
  breaker-with-local-fallback, submit-driven half-open probes, and the
  shared :class:`~repro.metrics.taxonomy.FailureTaxonomy` so
  wall-clock runs emit the same failure counters the simulator does.

Every ``submit_frame`` call resolves to exactly one
:class:`FrameOutcome` — the closed-accounting contract the chaos
invariants (:mod:`repro.realtime.chaos`) assert.
"""

from __future__ import annotations

import asyncio
import enum
from typing import Dict, List, Optional, Tuple

from repro.metrics.taxonomy import FailureKind, FailureTaxonomy
from repro.realtime import protocol
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import RetryBudget
from repro.resilience.config import ResilienceConfig


class FrameOutcome(enum.Enum):
    """The single terminal state of one submitted frame."""

    COMPLETED = "completed"
    #: no useful reply within the deadline budget (network silence,
    #: connect failure, reset, or a reply that arrived too late)
    TIMEOUT = "timeout"
    #: explicit server rejection (batch overflow / drain)
    REJECTED = "rejected"
    #: explicit overload pushback (admission or queue shed)
    OVERLOADED = "overloaded"
    #: server shed the frame because its deadline had already lapsed
    EXPIRED = "expired"
    #: breaker open: frame diverted to the local pipeline unsent
    FALLBACK_LOCAL = "fallback_local"


#: outcomes that indicate the remote path failed (feed the breaker)
FAILURE_OUTCOMES = (
    FrameOutcome.TIMEOUT,
    FrameOutcome.REJECTED,
    FrameOutcome.OVERLOADED,
    FrameOutcome.EXPIRED,
)


class AsyncSocketRemote:
    """Pooled wire-protocol-v2 client: one frame in flight per socket."""

    def __init__(
        self,
        address: Tuple[str, int],
        tenant: str = "device0",
        frame_bytes: int = 11_700,
        connect_timeout: float = 0.2,
        pool_idle: float = 3.0,
        pool_limit: int = 8,
    ) -> None:
        if frame_bytes <= 0:
            raise ValueError(f"frame bytes must be positive, got {frame_bytes}")
        if connect_timeout <= 0 or pool_idle <= 0:
            raise ValueError("connect_timeout and pool_idle must be positive")
        self.address = address
        self.tenant = tenant
        self.frame_bytes = frame_bytes
        self.connect_timeout = connect_timeout
        self.pool_idle = pool_idle
        self.pool_limit = pool_limit
        self._payload = b"\x00" * frame_bytes
        self._pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter, float]] = []

    async def exchange(self, deadline: Optional[float]) -> protocol.Reply:
        """One request/response round trip (raises on transport error).

        The caller bounds the whole call with ``asyncio.wait_for``; the
        connect step carries its own smaller timeout so a dead address
        fails fast instead of eating the whole deadline budget.
        """
        conn = self._acquire()
        if conn is None:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*self.address), timeout=self.connect_timeout
            )
        else:
            reader, writer = conn
        try:
            writer.write(protocol.encode_request(self.tenant, self._payload, deadline))
            await writer.drain()
            reply = await protocol.read_reply(reader)
        except BaseException:
            writer.close()
            raise
        self._release(reader, writer)
        return reply

    def _acquire(self):
        loop = asyncio.get_running_loop()
        now = loop.time()
        while self._pool:
            reader, writer, last_used = self._pool.pop()
            if now - last_used > self.pool_idle or writer.is_closing():
                writer.close()
                continue
            return reader, writer
        return None

    def _release(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        if writer.is_closing() or len(self._pool) >= self.pool_limit:
            writer.close()
            return
        self._pool.append((reader, writer, asyncio.get_running_loop().time()))

    async def close(self) -> None:
        while self._pool:
            _reader, writer, _t = self._pool.pop()
            writer.close()


class ResilientSocketRemote:
    """Deadline-budgeted retries + circuit breaker over real sockets."""

    def __init__(
        self,
        address: Tuple[str, int],
        deadline: float = 0.25,
        config: Optional[ResilienceConfig] = None,
        tenant: str = "device0",
        frame_bytes: int = 11_700,
        connect_timeout: Optional[float] = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.deadline = deadline
        self.config = config or ResilienceConfig.wallclock()
        self.remote = AsyncSocketRemote(
            address,
            tenant=tenant,
            frame_bytes=frame_bytes,
            connect_timeout=connect_timeout or max(0.2 * deadline, 0.05),
        )
        self.breaker = CircuitBreaker(self.config)
        self.breaker.on_open = self._arm_probe
        self.retry_budget = RetryBudget(
            rate=self.config.retry_budget_rate, burst=self.config.retry_budget_burst
        )
        self.taxonomy = FailureTaxonomy()
        self.submitted = 0
        self.counts: Dict[FrameOutcome, int] = {o: 0 for o in FrameOutcome}
        self._next_probe_at = 0.0

    # ------------------------------------------------------------------
    @property
    def settled(self) -> int:
        return sum(self.counts.values())

    @property
    def accounting_closed(self) -> bool:
        """Every submitted frame reached exactly one terminal outcome."""
        return self.submitted == self.settled

    def _arm_probe(self) -> None:
        loop = asyncio.get_running_loop()
        self._next_probe_at = loop.time() + self.breaker.current_backoff

    # ------------------------------------------------------------------
    async def submit(self) -> bool:
        """Bool-shaped entry point (plugs into ``AsyncRealTimeLoop``)."""
        return (await self.submit_frame()) is FrameOutcome.COMPLETED

    async def submit_frame(self) -> FrameOutcome:
        """Offload one frame; always returns exactly one outcome."""
        loop = asyncio.get_running_loop()
        self.submitted += 1
        try:
            outcome = await self._submit_inner(loop)
        except asyncio.CancelledError:
            # a cancelled offload still settles (the loop was torn down
            # mid-flight); classify as timeout so accounting stays closed
            self.counts[FrameOutcome.TIMEOUT] += 1
            self.taxonomy.record(FailureKind.SILENT_TIMEOUT)
            raise
        self.counts[outcome] += 1
        return outcome

    async def _submit_inner(self, loop: asyncio.AbstractEventLoop) -> FrameOutcome:
        now = loop.time()
        if not self.breaker.is_closed:
            if self.breaker.is_open and now >= self._next_probe_at:
                return await self._probe(loop)
            self.taxonomy.record(FailureKind.BREAKER_FALLBACK)
            return FrameOutcome.FALLBACK_LOCAL
        outcome, retry_after = await self._attempt_with_retry(loop)
        if outcome is FrameOutcome.COMPLETED:
            self.breaker.record_success(loop.time())
        else:
            self._record_failure_kind(outcome)
            self.breaker.record_failure(loop.time(), retry_after)
        return outcome

    # ------------------------------------------------------------------
    async def _probe(self, loop: asyncio.AbstractEventLoop) -> FrameOutcome:
        """Submit-driven half-open trial probe (no hedging, no budget)."""
        self.breaker.on_probe_sent(loop.time())
        self._next_probe_at = float("inf")  # one probe in flight at a time
        outcome, _hint = await self._single_attempt(self.deadline)
        ok = outcome is FrameOutcome.COMPLETED
        self.breaker.record_probe(ok, loop.time())
        if not ok:
            self.taxonomy.record(FailureKind.PROBE_FAILED)
            self._record_failure_kind(outcome)
            self._arm_probe()
        return outcome

    def _record_failure_kind(self, outcome: FrameOutcome) -> None:
        kind = {
            FrameOutcome.TIMEOUT: FailureKind.SILENT_TIMEOUT,
            FrameOutcome.REJECTED: FailureKind.REJECTED,
            FrameOutcome.OVERLOADED: FailureKind.OVERLOADED,
            # a server-side deadline shed is an explicit rejection of a
            # frame that had already missed its budget
            FrameOutcome.EXPIRED: FailureKind.REJECTED,
        }.get(outcome)
        if kind is not None:
            self.taxonomy.record(kind)

    async def _single_attempt(self, budget: float):
        """One exchange bounded by ``budget``; never raises."""
        try:
            reply = await asyncio.wait_for(
                self.remote.exchange(deadline=budget), timeout=budget
            )
        except (asyncio.TimeoutError, ConnectionError, OSError, protocol.ProtocolError):
            return FrameOutcome.TIMEOUT, None
        return self._classify(reply), reply.retry_after

    @staticmethod
    def _classify(reply: protocol.Reply) -> FrameOutcome:
        return {
            protocol.STATUS_OK: FrameOutcome.COMPLETED,
            protocol.STATUS_REJECTED: FrameOutcome.REJECTED,
            protocol.STATUS_OVERLOADED: FrameOutcome.OVERLOADED,
            protocol.STATUS_EXPIRED: FrameOutcome.EXPIRED,
        }[reply.status]

    # ------------------------------------------------------------------
    async def _attempt_with_retry(self, loop: asyncio.AbstractEventLoop):
        """Deadline-budgeted hedged retransmission; first OK wins.

        Mirrors the simulator's :class:`~repro.resilience.layer` retry
        discipline: the hedge fires at ``retry_after_frac`` of the
        deadline, only if at least ``min_reply_frac`` of the budget
        remains and the token bucket grants it.
        """
        start = loop.time()
        budget = self.deadline
        attempts = [asyncio.ensure_future(self._single_attempt(budget))]
        hedge_wait = self.config.retry_after_frac * budget
        done, _pending = await asyncio.wait(attempts, timeout=hedge_wait)
        if not done and self.config.max_retries > 0:
            now = loop.time()
            remaining = budget - (now - start)
            if remaining < self.config.min_reply_frac * budget:
                self.taxonomy.record(FailureKind.RETRY_WINDOW_CLOSED)
            elif not self.retry_budget.try_acquire(now):
                self.taxonomy.record(FailureKind.RETRY_DENIED)
            else:
                self.taxonomy.record(FailureKind.RETRY_SENT)
                attempts.append(
                    asyncio.ensure_future(self._single_attempt(remaining))
                )
        # race the in-flight attempts to the overall deadline: the first
        # COMPLETED wins immediately; otherwise the best non-OK verdict
        deadline_at = start + budget
        fallback: Optional[Tuple[FrameOutcome, Optional[float]]] = None
        pending = {t for t in attempts if not t.done()}
        for task in attempts:
            if task.done():
                outcome, hint = task.result()
                if outcome is FrameOutcome.COMPLETED:
                    return outcome, hint
                fallback = fallback or (outcome, hint)
        while pending:
            timeout = deadline_at - loop.time()
            if timeout <= 0:
                break
            done, pending = await asyncio.wait(
                pending, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                outcome, hint = task.result()
                if outcome is FrameOutcome.COMPLETED:
                    for stray in pending:
                        stray.cancel()
                    return outcome, hint
                fallback = fallback or (outcome, hint)
        for stray in pending:
            stray.cancel()
        return fallback if fallback is not None else (FrameOutcome.TIMEOUT, None)

    async def close(self) -> None:
        await self.remote.close()
