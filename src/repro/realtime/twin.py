"""Sim-twin validation: one spec, two executions, one tolerance band.

The simulator and the asyncio gateway share their server model by
construction — the same affine batch latency ``base + per_item * n``,
the same deadline semantics, the same breaker/retry discipline on the
client side.  This module turns that shared calibration into a tested
claim: run the *same* :class:`~repro.search.language.ScenarioSpec`
through

* the deterministic simulator (:func:`repro.search.compiler.compile_chaos`
  → :func:`repro.experiments.chaos.run_chaos`), and
* the wall-clock gateway (:func:`repro.realtime.chaos.run_realtime_chaos_async`),

and assert the two deadline-violation *fractions* agree within a
calibrated margin, using the same paired bootstrap equivalence test
(:func:`repro.analysis.significance.equivalent_within`) the hybrid
kernel uses for its fluid-vs-DES non-inferiority claim.

Absolute wall-clock magnitudes are noisy on shared CI hardware, so the
twin contract is deliberately two-sided-but-modest:

* **healthy equivalence** — on a benign spec both executions sit near
  zero violations, and the paired per-seed difference must stay inside
  ``±margin`` (default 8 percentage points);
* **directional agreement** — degrading the spec (a server slowdown
  past the deadline budget) must raise the violation fraction on
  *both* sides.  Direction is robust where magnitude is not.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.significance import equivalent_within
from repro.search.language import ScenarioSpec

#: default equivalence margin on the violation fraction (8 points)
DEFAULT_MARGIN = 0.08

#: GPU slowdown factor used by the directional check: pushes one batch
#: past the 250 ms deadline budget on both executions
#: (``(0.022 + 0.0055) * 12 = 0.33 s`` for even a single-frame batch)
DEGRADED_FACTOR = 12.0


def default_twin_spec(seed: int = 0, duration: float = 4.0) -> ScenarioSpec:
    """A benign spec both executions can run comfortably.

    The network row is effectively infinite bandwidth so the sim's
    uplink delay matches what localhost sockets see (~nothing), leaving
    the shared GPU model as the only latency term on both sides.
    """
    return ScenarioSpec.from_dict(
        {
            "seed": seed,
            "duration": duration,
            "device": {"frame_rate": 10.0, "deadline": 0.25},
            "gpu": {"base_latency": 0.022, "per_item": 0.0055, "jitter_sigma": 0.0},
            "network": [[0.0, 1000.0, 0.0]],
            "population": {"size": 4, "name_prefix": "dev"},
        }
    )


def degraded_twin_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """The same spec with a deadline-busting server slowdown attached."""
    duration = float(spec.data.get("duration", 4.0))
    return spec.replace(
        faults=[
            {
                "kind": "server_slowdown",
                "factor": DEGRADED_FACTOR,
                "windows": [[0.5, max(duration - 0.6, 0.5)]],
            }
        ]
    )


# ----------------------------------------------------------------------
# the two executions
# ----------------------------------------------------------------------


def sim_violation_fraction(spec: ScenarioSpec) -> Tuple[float, Dict[str, Any]]:
    """Run the spec in the simulator; violation fraction + QoS detail."""
    from repro.experiments.chaos import run_chaos
    from repro.search.compiler import compile_chaos

    result = run_chaos(compile_chaos(spec))
    qos = result.run.qos
    fraction = qos.timeouts / qos.total_frames if qos.total_frames else 0.0
    return fraction, {
        "total_frames": qos.total_frames,
        "successful": qos.successful,
        "timeouts": qos.timeouts,
        "rejected": qos.rejected,
    }


async def wallclock_violation_fraction_async(
    spec: ScenarioSpec,
) -> Tuple[float, Dict[str, Any]]:
    """Run the spec against a live gateway; fraction + loadgen detail."""
    from repro.realtime.chaos import run_realtime_chaos_async

    result = await run_realtime_chaos_async(spec)
    report = result.report
    return report.violation_fraction, {
        "submitted": report.submitted,
        "outcomes": dict(report.outcomes),
        "accounting_closed": report.accounting_closed,
    }


# ----------------------------------------------------------------------
# the twin report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TwinPair:
    """One seed executed on both sides."""

    seed: int
    sim_fraction: float
    real_fraction: float
    sim_detail: Dict[str, Any] = field(default_factory=dict)
    real_detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def gap(self) -> float:
        return self.sim_fraction - self.real_fraction


@dataclass
class TwinReport:
    """The twin verdict: paired fractions plus the equivalence call."""

    spec: ScenarioSpec
    margin: float
    pairs: List[TwinPair]
    equivalent: bool
    #: directional check (None when not run): both sides' degraded
    #: fraction minus their healthy mean
    degraded_rise: Optional[Tuple[float, float]] = None

    @property
    def mean_gap(self) -> float:
        return sum(p.gap for p in self.pairs) / len(self.pairs)

    @property
    def directional_holds(self) -> Optional[bool]:
        if self.degraded_rise is None:
            return None
        sim_rise, real_rise = self.degraded_rise
        return sim_rise > 0.0 and real_rise > 0.0

    @property
    def verdict(self) -> bool:
        directional = self.directional_holds
        return self.equivalent and (directional is None or directional)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "margin": self.margin,
            "pairs": [
                {
                    "seed": p.seed,
                    "sim_fraction": p.sim_fraction,
                    "real_fraction": p.real_fraction,
                    "sim": p.sim_detail,
                    "real": p.real_detail,
                }
                for p in self.pairs
            ],
            "mean_gap": self.mean_gap,
            "equivalent": self.equivalent,
            "degraded_rise": (
                list(self.degraded_rise) if self.degraded_rise else None
            ),
            "verdict": "PASS" if self.verdict else "FAIL",
        }


async def run_twin_async(
    spec: Optional[ScenarioSpec] = None,
    seeds: Sequence[int] = (0, 1, 2),
    margin: float = DEFAULT_MARGIN,
    directional: bool = True,
) -> TwinReport:
    """Execute the twin comparison across ``seeds``.

    The simulator side is deterministic per seed; the wall-clock side
    is a real run, so the equivalence is asserted on the *paired*
    per-seed fractions via the bootstrap band rather than any single
    noisy sample.
    """
    spec = spec or default_twin_spec()
    if not seeds:
        raise ValueError("need at least one seed")
    pairs: List[TwinPair] = []
    for seed in seeds:
        seeded = spec.replace(seed=int(seed))
        sim_frac, sim_detail = sim_violation_fraction(seeded)
        real_frac, real_detail = await wallclock_violation_fraction_async(seeded)
        pairs.append(
            TwinPair(
                seed=int(seed),
                sim_fraction=sim_frac,
                real_fraction=real_frac,
                sim_detail=sim_detail,
                real_detail=real_detail,
            )
        )
    if len(pairs) >= 2:
        equivalent = equivalent_within(
            [p.sim_fraction for p in pairs],
            [p.real_fraction for p in pairs],
            margin=margin,
        )
    else:
        # one pair: no distribution to bootstrap, fall back to the raw gap
        equivalent = abs(pairs[0].gap) <= margin
    degraded_rise: Optional[Tuple[float, float]] = None
    if directional:
        degraded = degraded_twin_spec(spec.replace(seed=int(seeds[0])))
        sim_deg, _ = sim_violation_fraction(degraded)
        real_deg, _ = await wallclock_violation_fraction_async(degraded)
        sim_healthy = sum(p.sim_fraction for p in pairs) / len(pairs)
        real_healthy = sum(p.real_fraction for p in pairs) / len(pairs)
        degraded_rise = (sim_deg - sim_healthy, real_deg - real_healthy)
    return TwinReport(
        spec=spec,
        margin=margin,
        pairs=pairs,
        equivalent=equivalent,
        degraded_rise=degraded_rise,
    )


def run_twin(
    spec: Optional[ScenarioSpec] = None,
    seeds: Sequence[int] = (0, 1, 2),
    margin: float = DEFAULT_MARGIN,
    directional: bool = True,
) -> TwinReport:
    """Synchronous entry point (owns its event loop)."""
    return asyncio.run(
        run_twin_async(spec, seeds=seeds, margin=margin, directional=directional)
    )
