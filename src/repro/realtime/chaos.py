"""Wall-clock chaos: the simulator's fault algebra on a real gateway.

The simulator expresses chaos as declarative fault timelines
(:mod:`repro.faults`, spec'd via :mod:`repro.search.language`).  This
module replays the *same* ``ScenarioSpec`` fault blocks against a live
:class:`~repro.realtime.gateway.InferenceGateway` over real sockets:

=====================  ==============================================
spec fault kind        wall-clock action
=====================  ==============================================
``server_crash``       kill the gateway (connections reset), restart
``server_kill``        at the window end on the *same* port
``server_slowdown``    ``slowdown_factor = factor`` on the GPU model
``gpu_contention``     ``slowdown_factor = mean_factor`` (the mean of
                       the sim's lognormal contention)
``latency_spike``      ``extra_latency = extra_delay`` per batch
``burst_loss``         ``reset_fraction = loss`` (deterministic share
                       of new connections reset on arrival)
``bandwidth_collapse`` ``read_stall = (factor - 1) * STALL_UNIT`` — a
                       byte-level read stall approximating the
                       shrunken uplink
=====================  ==============================================

Kinds with no wall-clock analogue (``camera_stall``, ``cpu_throttle``,
``controller_kill``, ``device_reboot`` — they fault the *device*, and
here the device is the load generator itself) raise
:class:`~repro.search.language.SpecError` up front, honouring the
language's no-silent-drop rule.

:func:`run_realtime_chaos` drives a seeded load burst through the
faulted gateway and judges the run with the same
:class:`~repro.faults.invariants.InvariantCheck` rows the simulator's
chaos harness emits: the breaker must open during a kill, local
fallback must be served while it is open, it must re-close after the
restart, completions must resume, and accounting must be closed on
both sides of the wire.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.invariants import InvariantCheck
from repro.faults.windows import FaultTimeline, FaultWindow
from repro.realtime.client import FrameOutcome, ResilientSocketRemote
from repro.realtime.gateway import GatewayConfig, GatewayStats, InferenceGateway
from repro.realtime.loadgen import LoadgenConfig, LoadgenReport, run_loadgen
from repro.resilience.config import ResilienceConfig
from repro.search.language import ScenarioSpec, SpecError

#: seconds of read stall per unit of lost bandwidth factor (the sim's
#: bandwidth term scaled to a per-request localhost stall)
STALL_UNIT = 0.01

#: fault kinds lowered to a kill/restart of the gateway process
KILL_KINDS = frozenset({"server_crash", "server_kill"})

#: fault kinds lowered to a gateway chaos knob: kind -> (knob, lower)
#: where ``lower(entry)`` maps spec parameters to the knob's on-value
KNOB_KINDS: Dict[str, Tuple[str, Any]] = {
    "server_slowdown": ("slowdown_factor", lambda e: float(e.get("factor", 3.0))),
    "gpu_contention": (
        "slowdown_factor",
        lambda e: float(e.get("mean_factor", 2.0)),
    ),
    "latency_spike": ("extra_latency", lambda e: float(e.get("extra_delay", 0.08))),
    "burst_loss": ("reset_fraction", lambda e: float(e.get("loss", 0.3))),
    "bandwidth_collapse": (
        "read_stall",
        lambda e: max(0.0, (float(e.get("factor", 8.0)) - 1.0) * STALL_UNIT),
    ),
}

#: knob name -> healthy value restored when a window closes
KNOB_DEFAULTS: Dict[str, float] = {
    "slowdown_factor": 1.0,
    "extra_latency": 0.0,
    "read_stall": 0.0,
    "reset_fraction": 0.0,
}


class GatewayHarness:
    """One gateway "process" with a kill/restart story.

    Owns the listening port across incarnations (restart rebinds the
    *same* port, so clients reconnect without rediscovery — the shape
    of a supervised process respawn), re-applies live chaos knob
    values to each new incarnation, and accumulates the stats of dead
    incarnations so whole-run accounting stays checkable.
    """

    def __init__(self, config: Optional[GatewayConfig] = None) -> None:
        self.config = config or GatewayConfig()
        self.gateway: Optional[InferenceGateway] = None
        self.incarnations = 0
        self._port: Optional[int] = None
        self._dead_stats: List[GatewayStats] = []
        self._knobs: Dict[str, float] = dict(KNOB_DEFAULTS)

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self.gateway is not None

    @property
    def address(self) -> Tuple[str, int]:
        if self._port is None:
            raise RuntimeError("harness not started")
        return (self.config.host, self._port)

    async def start(self) -> "GatewayHarness":
        if self.gateway is not None:
            raise RuntimeError("gateway already running")
        config = self.config
        if self._port is not None and config.port != self._port:
            # rebind the port the first incarnation was assigned
            config = GatewayConfig(
                **{**_config_dict(config), "port": self._port}
            )
        self.gateway = InferenceGateway(config)
        await self.gateway.start()
        self._port = self.gateway.address[1]
        self.incarnations += 1
        for knob, value in self._knobs.items():
            setattr(self.gateway, knob, value)
        return self

    async def kill(self) -> None:
        """Abort the live incarnation (clients see connection resets)."""
        if self.gateway is None:
            return
        gateway, self.gateway = self.gateway, None
        await gateway.stop(abort=True)
        self._dead_stats.append(gateway.stats)

    async def restart(self) -> None:
        await self.start()

    async def stop(self) -> None:
        """Graceful final stop (queue drained as REJECTED)."""
        if self.gateway is None:
            return
        gateway, self.gateway = self.gateway, None
        await gateway.stop()
        self._dead_stats.append(gateway.stats)

    # ------------------------------------------------------------------
    def set_knob(self, knob: str, value: float) -> None:
        if knob not in KNOB_DEFAULTS:
            raise ValueError(f"unknown chaos knob {knob!r}")
        self._knobs[knob] = value
        if self.gateway is not None:
            setattr(self.gateway, knob, value)

    def clear_knob(self, knob: str) -> None:
        self.set_knob(knob, KNOB_DEFAULTS[knob])

    # ------------------------------------------------------------------
    @property
    def all_stats(self) -> List[GatewayStats]:
        """Stats of every incarnation, dead first, live (if any) last."""
        out = list(self._dead_stats)
        if self.gateway is not None:
            out.append(self.gateway.stats)
        return out

    @property
    def accounting_closed(self) -> bool:
        """Every incarnation settled every request it decoded."""
        return all(s.accounting_closed for s in self.all_stats)

    def stats_dict(self) -> Dict[str, int]:
        """Counters summed across incarnations."""
        total: Dict[str, int] = {}
        for stats in self.all_stats:
            for key, value in stats.as_dict().items():
                total[key] = total.get(key, 0) + value
        return total


def _config_dict(config: GatewayConfig) -> Dict[str, Any]:
    return {
        name: getattr(config, name)
        for name in GatewayConfig.__dataclass_fields__
    }


# ----------------------------------------------------------------------
# spec -> wall-clock action schedule
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Action:
    """One scheduled injector step."""

    at: float
    kind: str  # "kill" | "restart" | "set" | "clear"
    knob: Optional[str] = None
    value: float = 0.0


def lower_faults(faults: List[Dict[str, Any]]) -> List[_Action]:
    """Validate spec fault entries and lower them to a schedule.

    Raises :class:`SpecError` for kinds with no wall-clock mapping —
    a fault the run would silently not inject is the exact failure
    mode the spec language forbids.
    """
    actions: List[_Action] = []
    kill_timelines: List[FaultTimeline] = []
    for i, entry in enumerate(faults):
        kind = entry["kind"]
        timeline = FaultTimeline.from_rows(
            [tuple(w) for w in entry["windows"]]
        )
        if kind in KILL_KINDS:
            kill_timelines.append(timeline)
            for at, active in timeline.edges():
                actions.append(_Action(at, "kill" if active else "restart"))
        elif kind in KNOB_KINDS:
            knob, lower = KNOB_KINDS[kind]
            value = lower(entry)
            for at, active in timeline.edges():
                if active:
                    actions.append(_Action(at, "set", knob, value))
                else:
                    actions.append(_Action(at, "clear", knob))
        else:
            raise SpecError(
                f"faults[{i}]: kind {kind!r} has no wall-clock mapping "
                f"(supported: {sorted(KILL_KINDS | set(KNOB_KINDS))})"
            )
    if len(kill_timelines) > 1:
        merged = kill_timelines[0]
        for timeline in kill_timelines[1:]:
            if merged.overlaps_timeline(timeline):
                raise SpecError(
                    "overlapping kill windows: the gateway cannot die twice"
                )
            merged = merged.union(timeline)
    return sorted(actions, key=lambda a: a.at)


def kill_timeline(faults: List[Dict[str, Any]]) -> FaultTimeline:
    """Union of all kill-kind windows (empty when none)."""
    merged = FaultTimeline()
    for entry in faults:
        if entry["kind"] in KILL_KINDS:
            merged = merged.union(
                FaultTimeline.from_rows([tuple(w) for w in entry["windows"]])
            )
    return merged


class WallClockInjector:
    """Replays a lowered fault schedule against a live harness."""

    def __init__(self, harness: GatewayHarness, faults: List[Dict[str, Any]]):
        self.harness = harness
        self.actions = lower_faults(faults)
        self.applied: List[Tuple[float, str]] = []

    async def run(self, start: float) -> None:
        """Apply every action at its offset from ``start`` (loop time)."""
        loop = asyncio.get_running_loop()
        for action in self.actions:
            delay = start + action.at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if action.kind == "kill":
                await self.harness.kill()
            elif action.kind == "restart":
                await self.harness.restart()
            elif action.kind == "set":
                self.harness.set_knob(action.knob, action.value)
            else:
                self.harness.clear_knob(action.knob)
            self.applied.append((loop.time() - start, action.kind))


# ----------------------------------------------------------------------
# the chaos run
# ----------------------------------------------------------------------


def default_realtime_spec(seed: int = 0) -> ScenarioSpec:
    """The stock wall-clock chaos scenario: one mid-run gateway kill.

    Sized for CI: ~7 s wall clock, 6 clients at 10 fps, a 1.5 s outage
    starting at t=2 — long enough for every breaker to trip, serve
    fallbacks, probe, and re-close inside the run.
    """
    return ScenarioSpec.from_dict(
        {
            "seed": seed,
            "duration": 7.0,
            "device": {"frame_rate": 10.0, "deadline": 0.25},
            "gpu": {"base_latency": 0.022, "per_item": 0.0055},
            "population": {"size": 6, "name_prefix": "dev"},
            "faults": [{"kind": "server_crash", "windows": [[2.0, 1.5]]}],
        }
    )


def configs_from_spec(
    spec: ScenarioSpec,
) -> Tuple[GatewayConfig, LoadgenConfig]:
    """Lower a spec's device/gpu/population blocks to run configs."""
    dev = spec.data.get("device", {})
    gpu = spec.data.get("gpu", {})
    pop = spec.data.get("population", {})
    gateway = GatewayConfig(
        base_latency=gpu.get("base_latency", 0.022),
        per_item=gpu.get("per_item", 0.0055),
    )
    loadgen = LoadgenConfig(
        clients=pop.get("size", 6),
        frame_rate=dev.get("frame_rate", 10.0),
        deadline=dev.get("deadline", 0.25),
        duration=spec.data.get("duration", 7.0),
        frame_bytes=2_000,
        seed=spec.seed,
        tenant_prefix=pop.get("name_prefix", "dev"),
    )
    return gateway, loadgen


@dataclass
class RealtimeChaosResult:
    """One judged wall-clock chaos run."""

    spec: ScenarioSpec
    report: LoadgenReport
    gateway_stats: Dict[str, int]
    incarnations: int
    invariants: List[InvariantCheck]
    #: completions visible at the heal instant (recovery baseline)
    completed_at_heal: Optional[int] = None
    applied: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def all_invariants_hold(self) -> bool:
        return all(c.passed for c in self.invariants)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "report": self.report.to_dict(),
            "gateway": self.gateway_stats,
            "incarnations": self.incarnations,
            "completed_at_heal": self.completed_at_heal,
            "invariants": [
                {
                    "name": c.name,
                    "passed": c.passed,
                    "observed": c.observed,
                    "expected": c.expected,
                    "tolerance": c.tolerance,
                    "detail": c.detail,
                }
                for c in self.invariants
            ],
            "all_invariants_hold": self.all_invariants_hold,
        }


async def run_realtime_chaos_async(
    spec: Optional[ScenarioSpec] = None,
    resilience: Optional[ResilienceConfig] = None,
) -> RealtimeChaosResult:
    """Run one spec'd chaos scenario against a live gateway."""
    spec = spec or default_realtime_spec()
    gw_config, lg_config = configs_from_spec(spec)
    harness = GatewayHarness(gw_config)
    injector = WallClockInjector(harness, spec.faults)  # validates up front
    kills = kill_timeline(spec.faults)
    await harness.start()
    remotes = [
        ResilientSocketRemote(
            harness.address,
            deadline=lg_config.deadline,
            config=resilience or ResilienceConfig.wallclock(),
            tenant=f"{lg_config.tenant_prefix}{i}",
            frame_bytes=lg_config.frame_bytes,
        )
        for i in range(lg_config.clients)
    ]
    loop = asyncio.get_running_loop()
    start = loop.time()
    heal_snapshot: Dict[str, int] = {}

    async def snapshot_at_heal() -> None:
        if not len(kills):
            return
        await asyncio.sleep(max(0.0, start + kills.last_end + 0.05 - loop.time()))
        heal_snapshot["completed"] = sum(
            r.counts[FrameOutcome.COMPLETED] for r in remotes
        )

    injector_task = asyncio.ensure_future(injector.run(start))
    snapshot_task = asyncio.ensure_future(snapshot_at_heal())
    try:
        report = await run_loadgen(lg_config, harness.address, remotes=remotes)
        await asyncio.gather(injector_task, snapshot_task)
    finally:
        injector_task.cancel()
        snapshot_task.cancel()
        await asyncio.gather(
            injector_task, snapshot_task, return_exceptions=True
        )
        await harness.stop()
    invariants = _judge(report, harness, kills, heal_snapshot.get("completed"))
    return RealtimeChaosResult(
        spec=spec,
        report=report,
        gateway_stats=harness.stats_dict(),
        incarnations=harness.incarnations,
        invariants=invariants,
        completed_at_heal=heal_snapshot.get("completed"),
        applied=injector.applied,
    )


def run_realtime_chaos(
    spec: Optional[ScenarioSpec] = None,
    resilience: Optional[ResilienceConfig] = None,
) -> RealtimeChaosResult:
    """Synchronous entry point (owns its event loop)."""
    return asyncio.run(run_realtime_chaos_async(spec, resilience))


def _judge(
    report: LoadgenReport,
    harness: GatewayHarness,
    kills: FaultTimeline,
    completed_at_heal: Optional[int],
) -> List[InvariantCheck]:
    """The wall-clock chaos invariants, as judgeable rows."""
    checks: List[InvariantCheck] = []
    window = kills.windows[0] if len(kills) else None
    checks.append(
        InvariantCheck(
            name="client-accounting-closed",
            passed=report.accounting_closed,
            observed=float(report.submitted - sum(report.outcomes.values())),
            expected=0.0,
            tolerance=0.0,
            detail="submitted minus settled across all clients",
        )
    )
    gateway = harness.stats_dict()
    checks.append(
        InvariantCheck(
            name="gateway-accounting-closed",
            passed=harness.accounting_closed,
            observed=float(
                gateway.get("received", 0)
                - (
                    gateway.get("completed", 0)
                    + gateway.get("rejected", 0)
                    + gateway.get("overloaded", 0)
                    + gateway.get("expired", 0)
                )
            ),
            expected=0.0,
            tolerance=0.0,
            detail="decoded minus settled across all gateway incarnations",
        )
    )
    if not len(kills):
        return checks
    checks.append(
        InvariantCheck(
            name="breaker-opened",
            passed=report.breakers_opened >= 1,
            observed=float(report.breakers_opened),
            expected=1.0,
            tolerance=0.0,
            window=window,
            detail="total open transitions across client breakers (>= 1)",
        )
    )
    fallbacks = report.outcomes.get("fallback_local", 0)
    checks.append(
        InvariantCheck(
            name="fallback-served",
            passed=fallbacks >= 1,
            observed=float(fallbacks),
            expected=1.0,
            tolerance=0.0,
            window=window,
            detail="frames diverted to local inference while open (>= 1)",
        )
    )
    checks.append(
        InvariantCheck(
            name="breakers-reclosed",
            passed=report.breakers_all_closed,
            observed=float(
                sum(1 for r in report.remotes if r.breaker.is_closed)
            ),
            expected=float(report.clients),
            tolerance=0.0,
            window=window,
            detail="breakers CLOSED at end of run",
        )
    )
    recovered = (
        report.completed - completed_at_heal
        if completed_at_heal is not None
        else 0
    )
    checks.append(
        InvariantCheck(
            name="recovered-after-restart",
            passed=recovered >= 1,
            observed=float(recovered),
            expected=1.0,
            tolerance=0.0,
            window=window,
            detail="completions after the gateway restarted (>= 1)",
        )
    )
    checks.append(
        InvariantCheck(
            name="gateway-restarted",
            passed=harness.incarnations >= 2,
            observed=float(harness.incarnations),
            expected=2.0,
            tolerance=0.0,
            window=window,
            detail="gateway incarnations (kill + restart happened)",
        )
    )
    return checks
