"""The asyncio inference gateway: the deployable wall-clock surface.

:class:`~repro.realtime.netserver.InferenceServer` is a demo — a
threaded TCP server with no admission control, no deadline awareness
and no shutdown story.  This module is the enforcement point the
ROADMAP asks for ("make the realtime path a real service under load"),
following the deadline-constrained-offloading shape of Sedlak et al.
(arXiv:2510.01885) and the token-bucket admission discipline of
Chakrabarti et al. (arXiv:2010.13737):

* **asyncio-native** — one event loop, every connection a coroutine,
  thousands of concurrent clients without a thread per socket;
* **wire protocol v2** (:mod:`repro.realtime.protocol`) — tenant id +
  deadline budget in, status byte + retry-after hint out;
* **per-tenant token-bucket admission** — the same continuous-refill
  bucket the resilience layer meters retries with
  (:class:`~repro.resilience.budget.RetryBudget`), here metering each
  tenant's offered load; denials carry the bucket's own estimate of
  when the next token lands;
* **bounded queue with deadline-aware shedding** — when the accept
  queue is full the gateway drops the frame that is going to miss its
  deadline anyway (soonest ``deadline_at``), never blindly the newest;
* **timeouts everywhere** — reads, writes and the GPU loop are all
  bounded, so one wedged client can never wedge the gateway;
* **closed accounting** — every decoded request reaches exactly one
  terminal status, including through a graceful stop (drained as
  REJECTED) and an aborted one (connections reset, which the client
  classifies itself).

The "GPU" stays the calibrated affine sleep of the v1 server so the
simulator's server model and the gateway agree by construction — that
shared calibration is what makes the sim-vs-wall-clock twin test
(:mod:`repro.realtime.twin`) meaningful.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set, Tuple

from repro.realtime import protocol
from repro.resilience.budget import RetryBudget


@dataclass(frozen=True)
class GatewayConfig:
    """Every gateway knob, validated once."""

    host: str = "127.0.0.1"
    port: int = 0
    #: adaptive-batching cap (mirrors the simulator's batch_limit)
    batch_limit: int = 15
    #: GPU latency model: ``base_latency + per_item * batch_size``
    base_latency: float = 0.022
    per_item: float = 0.0055
    #: accept-queue bound; beyond it the deadline-aware shed kicks in
    queue_limit: int = 64
    #: per-tenant admitted frame rate (frames/s; None disables admission)
    tenant_rate: Optional[float] = None
    #: per-tenant admission burst (tokens)
    tenant_burst: float = 8.0
    #: bound on reading one request frame (covers idle keep-alive waits
    #: and mid-frame stalls alike)
    read_timeout: float = 30.0
    #: bound on flushing one response frame
    write_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {self.batch_limit}")
        if self.base_latency < 0 or self.per_item < 0:
            raise ValueError("GPU latency terms must be >= 0")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.tenant_rate is not None and self.tenant_rate <= 0:
            raise ValueError(f"tenant_rate must be positive, got {self.tenant_rate}")
        if self.tenant_burst <= 0:
            raise ValueError(f"tenant_burst must be positive, got {self.tenant_burst}")
        if self.read_timeout <= 0 or self.write_timeout <= 0:
            raise ValueError("read/write timeouts must be positive")

    @property
    def batch_seconds(self) -> float:
        """Wall-clock cost of one full batch (drain-rate estimate)."""
        return self.base_latency + self.per_item * self.batch_limit


@dataclass
class GatewayStats:
    """Single-threaded counters (the event loop is the lock)."""

    connections: int = 0
    resets: int = 0
    received: int = 0
    completed: int = 0
    rejected: int = 0
    overloaded: int = 0
    expired: int = 0
    #: overloaded split: admission denials vs queue-overflow sheds
    admission_denied: int = 0
    shed_overflow: int = 0
    protocol_errors: int = 0
    read_timeouts: int = 0
    batches: int = 0

    @property
    def settled(self) -> int:
        """Requests that reached a terminal status."""
        return self.completed + self.rejected + self.overloaded + self.expired

    @property
    def accounting_closed(self) -> bool:
        """Every decoded request got exactly one terminal status."""
        return self.received == self.settled

    def as_dict(self) -> Dict[str, int]:
        return {
            "connections": self.connections,
            "resets": self.resets,
            "received": self.received,
            "completed": self.completed,
            "rejected": self.rejected,
            "overloaded": self.overloaded,
            "expired": self.expired,
            "admission_denied": self.admission_denied,
            "shed_overflow": self.shed_overflow,
            "protocol_errors": self.protocol_errors,
            "read_timeouts": self.read_timeouts,
            "batches": self.batches,
        }


class _Pending:
    """One admitted frame waiting for the GPU."""

    __slots__ = ("future", "deadline_at", "enqueued_at", "tenant")

    def __init__(
        self,
        future: "asyncio.Future[Tuple[bytes, Optional[float]]]",
        deadline_at: Optional[float],
        enqueued_at: float,
        tenant: str,
    ) -> None:
        self.future = future
        self.deadline_at = deadline_at
        self.enqueued_at = enqueued_at
        self.tenant = tenant

    def shed_key(self) -> Tuple[int, float]:
        """Victim ordering: soonest real deadline first, then oldest.

        A frame with an explicit deadline that is about to lapse is the
        one that will miss it anyway; among hint-less frames the oldest
        has been waiting longest and is closest to uselessness.
        """
        if self.deadline_at is not None:
            return (0, self.deadline_at)
        return (1, self.enqueued_at)


class InferenceGateway:
    """Asyncio TCP gateway with admission, shedding and batching."""

    def __init__(self, config: Optional[GatewayConfig] = None) -> None:
        self.config = config or GatewayConfig()
        self.stats = GatewayStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._gpu_task: Optional[asyncio.Task] = None
        self._queue: Deque[_Pending] = deque()
        self._queue_event = asyncio.Event()
        self._handlers: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._admission: Dict[str, RetryBudget] = {}
        self._stopping = False
        # --- chaos knobs (driven by realtime.chaos.WallClockInjector) --
        #: multiplies the GPU latency model (server_slowdown/contention)
        self.slowdown_factor = 1.0
        #: added to every batch's execution time (latency_spike)
        self.extra_latency = 0.0
        #: sleep before reading each request frame (bandwidth collapse
        #: approximated as a byte-level read stall)
        self.read_stall = 0.0
        #: fraction of new connections reset on arrival (burst loss);
        #: deterministic credit accumulator, no RNG on the data path
        self.reset_fraction = 0.0
        self._reset_credit = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "InferenceGateway":
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._stopping = False
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self._gpu_task = asyncio.ensure_future(self._gpu_loop())
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("gateway not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self, abort: bool = False) -> None:
        """Stop serving; ``abort=True`` emulates a crash (kill -9).

        Graceful stop drains the queue with REJECTED so every admitted
        frame still gets a terminal reply; abort resets every open
        connection mid-flight — the client-visible shape of a process
        kill — and settles queued frames as REJECTED internally so the
        gateway's own accounting stays closed.
        """
        if self._server is None:
            return
        self._stopping = True
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._gpu_task is not None:
            self._gpu_task.cancel()
            try:
                await self._gpu_task
            except asyncio.CancelledError:
                pass
            self._gpu_task = None
        while self._queue:
            self._settle(self._queue.popleft(), "rejected", protocol.STATUS_REJECTED)
        if abort:
            for writer in list(self._writers):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
        for task in list(self._handlers):
            if abort:
                task.cancel()
        if self._handlers:
            await asyncio.wait(list(self._handlers), timeout=2.0)
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self._handlers.clear()

    async def __aenter__(self) -> "InferenceGateway":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # per-connection handler
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self.stats.connections += 1
        # burst-loss chaos: reset this connection before reading a byte
        self._reset_credit += self.reset_fraction
        if self._reset_credit >= 1.0:
            self._reset_credit -= 1.0
            self.stats.resets += 1
            if writer.transport is not None:
                writer.transport.abort()
            return
        self._writers.add(writer)
        try:
            while not self._stopping:
                if self.read_stall > 0.0:
                    await asyncio.sleep(self.read_stall)
                try:
                    request = await asyncio.wait_for(
                        protocol.read_request(reader), timeout=self.config.read_timeout
                    )
                except asyncio.TimeoutError:
                    self.stats.read_timeouts += 1
                    return
                except protocol.ProtocolError:
                    self.stats.protocol_errors += 1
                    return
                if request is None:
                    return  # clean EOF
                status, hint = await self._process(request)
                writer.write(protocol.encode_reply(status, hint))
                try:
                    await asyncio.wait_for(
                        writer.drain(), timeout=self.config.write_timeout
                    )
                except asyncio.TimeoutError:
                    return
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _process(self, request: protocol.Request):
        """Admit, queue and await one frame's terminal status."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        self.stats.received += 1
        # --- per-tenant token-bucket admission ------------------------
        if self.config.tenant_rate is not None:
            bucket = self._admission.get(request.tenant)
            if bucket is None:
                bucket = RetryBudget(
                    rate=self.config.tenant_rate, burst=self.config.tenant_burst
                )
                self._admission[request.tenant] = bucket
            if not bucket.try_acquire(now):
                self.stats.overloaded += 1
                self.stats.admission_denied += 1
                hint = (1.0 - bucket.tokens(now)) / self.config.tenant_rate
                return protocol.STATUS_OVERLOADED, max(hint, 0.0)
        # --- bounded queue with deadline-aware shedding ---------------
        deadline_at = now + request.deadline if request.deadline is not None else None
        pending = _Pending(loop.create_future(), deadline_at, now, request.tenant)
        self._queue.append(pending)
        if len(self._queue) > self.config.queue_limit:
            victim = min(self._queue, key=_Pending.shed_key)
            self._queue.remove(victim)
            self.stats.shed_overflow += 1
            drain = (
                len(self._queue) / self.config.batch_limit + 1.0
            ) * self.config.batch_seconds
            self._settle(victim, "overloaded", protocol.STATUS_OVERLOADED, drain)
        self._queue_event.set()
        status, hint = await pending.future
        return status, hint

    # ------------------------------------------------------------------
    # GPU loop
    # ------------------------------------------------------------------
    async def _gpu_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                self._queue_event.clear()
                await self._queue_event.wait()
            batch = []
            now = loop.time()
            while self._queue and len(batch) < self.config.batch_limit:
                pending = self._queue.popleft()
                if pending.future.done():
                    continue  # settled by a shed between waits
                if pending.deadline_at is not None and pending.deadline_at <= now:
                    # an answer nobody can use: shed, don't compute
                    self._settle(pending, "expired", protocol.STATUS_EXPIRED)
                    continue
                batch.append(pending)
            if not batch:
                continue
            gpu_seconds = (
                self.config.base_latency + self.config.per_item * len(batch)
            ) * self.slowdown_factor + self.extra_latency
            try:
                await asyncio.sleep(gpu_seconds)
            except asyncio.CancelledError:
                # stop() killed the GPU mid-batch: the popped frames are
                # no longer in the queue, so settle them here or they
                # would leak out of the accounting
                for pending in batch:
                    self._settle(pending, "rejected", protocol.STATUS_REJECTED)
                raise
            self.stats.batches += 1
            for pending in batch:
                self._settle(pending, "completed", protocol.STATUS_OK)

    # ------------------------------------------------------------------
    def _settle(
        self,
        pending: _Pending,
        counter: str,
        status: bytes,
        hint: Optional[float] = None,
    ) -> None:
        """Resolve one frame to its single terminal status."""
        if pending.future.done():  # pragma: no cover - defensive
            return
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        pending.future.set_result((status, hint))
