"""The wall-clock closed loop.

Threads:

* **ticker** — emits frame tokens at ``F_s`` (wall-clock);
* **local worker** — consumes non-offloaded frames one at a time via
  :func:`~repro.realtime.fakework.calibrated_spin`;
* **offload pool** — each offloaded frame is a task that calls
  :meth:`FakeRemote.submit` and applies the deadline on return;
* **measurement loop** — once per period, closes rate buckets, feeds
  the same :class:`~repro.control.base.Measurement` record to the same
  :class:`~repro.control.base.Controller` implementations the
  simulator uses, and applies the returned target.

This is intentionally a miniature of :class:`repro.device.device
.EdgeDevice` with ``time.sleep`` where the simulator has
``env.timeout`` — the point is API parity, not performance.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional

from repro.control.base import Controller, Measurement
from repro.device.splitter import TokenBucketSplitter
from repro.metrics.counters import WindowedRate
from repro.realtime.fakework import FakeRemote, calibrated_spin


@dataclass
class RealTimeResult:
    """Per-period traces from one wall-clock run."""

    times: List[float] = field(default_factory=list)
    offload_target: List[float] = field(default_factory=list)
    throughput: List[float] = field(default_factory=list)
    timeout_rate: List[float] = field(default_factory=list)
    local_rate: List[float] = field(default_factory=list)


class RealTimeLoop:
    """Drive a controller against wall-clock fake work."""

    def __init__(
        self,
        controller: Controller,
        remote: Optional[FakeRemote] = None,
        frame_rate: float = 30.0,
        deadline: float = 0.25,
        local_latency: float = 0.077,
        measure_period: float = 1.0,
        t_window_buckets: int = 3,
        offload_workers: int = 16,
    ) -> None:
        if frame_rate <= 0 or deadline <= 0 or measure_period <= 0:
            raise ValueError("rates, deadline and period must be positive")
        self.controller = controller
        self.remote = remote or FakeRemote()
        self.frame_rate = frame_rate
        self.deadline = deadline
        self.local_latency = local_latency
        self.measure_period = measure_period
        self.offload_workers = offload_workers

        self.splitter = TokenBucketSplitter(frame_rate)
        self.splitter.set_target(controller.initial_target(frame_rate))
        self._t_window = WindowedRate(t_window_buckets)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._local_busy = threading.Event()

        # bucket counters (guarded by _lock)
        self._offload_attempts = 0
        self._offload_success = 0
        self._timeouts = 0
        self._local_done = 0

    # ------------------------------------------------------------------
    def run(self, duration: float) -> RealTimeResult:
        """Run the loop for ``duration`` wall-clock seconds."""
        result = RealTimeResult()
        pool = ThreadPoolExecutor(max_workers=self.offload_workers)
        start = time.perf_counter()
        self._stop.clear()

        ticker = threading.Thread(
            target=self._ticker, args=(pool,), name="rt-ticker", daemon=True
        )
        ticker.start()
        try:
            next_measure = start + self.measure_period
            while time.perf_counter() - start < duration:
                time.sleep(max(0.0, next_measure - time.perf_counter()))
                next_measure += self.measure_period
                self._measure_step(result, time.perf_counter() - start)
        finally:
            self._stop.set()
            ticker.join(timeout=2.0)
            pool.shutdown(wait=False, cancel_futures=True)
        return result

    # ------------------------------------------------------------------
    def _ticker(self, pool: ThreadPoolExecutor) -> None:
        period = 1.0 / self.frame_rate
        next_tick = time.perf_counter() + period
        while not self._stop.is_set():
            delay = next_tick - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            next_tick += period
            if self.splitter.route():
                with self._lock:
                    self._offload_attempts += 1
                pool.submit(self._offload_one)
            else:
                if not self._local_busy.is_set():
                    self._local_busy.set()
                    threading.Thread(
                        target=self._local_one, name="rt-local", daemon=True
                    ).start()

    def _offload_one(self) -> None:
        t0 = time.perf_counter()
        ok = self.remote.submit()
        elapsed = time.perf_counter() - t0
        with self._lock:
            if ok and elapsed <= self.deadline:
                self._offload_success += 1
            else:
                self._timeouts += 1
                self._t_window.record(1)

    def _local_one(self) -> None:
        try:
            calibrated_spin(self.local_latency)
            with self._lock:
                self._local_done += 1
        finally:
            self._local_busy.clear()

    def _measure_step(self, result: RealTimeResult, now: float) -> None:
        period = self.measure_period
        with self._lock:
            attempts = self._offload_attempts / period
            success = self._offload_success / period
            local = self._local_done / period
            t_last = self._timeouts / period
            self._offload_attempts = 0
            self._offload_success = 0
            self._local_done = 0
            self._timeouts = 0
            self._t_window.close_bucket(period)
            t_avg = self._t_window.average

        measurement = Measurement(
            time=now,
            frame_rate=self.frame_rate,
            offload_target=self.splitter.target,
            offload_rate=attempts,
            offload_success_rate=success,
            timeout_rate=t_avg,
            timeout_rate_last=t_last,
            local_rate=local,
            throughput=success + local,
        )
        target = self.controller.update(measurement)
        self.splitter.set_target(target)

        result.times.append(now)
        result.offload_target.append(self.splitter.target)
        result.throughput.append(success + local)
        result.timeout_rate.append(t_last)
        result.local_rate.append(local)
