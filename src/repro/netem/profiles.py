"""Named link-condition presets used across tests, examples, benches."""

from __future__ import annotations

from typing import Dict

from repro.netem.link import LinkConditions

#: Table V's best case: bandwidth 10, no loss.
IDEAL = LinkConditions(bandwidth=10.0, loss=0.0)

#: Table V's intermediate regime: bandwidth 4 — partial offload only.
CONGESTED = LinkConditions(bandwidth=4.0, loss=0.0)

#: Fig 2's injected impairment: full bandwidth with 7 % packet loss.
LOSSY = LinkConditions(bandwidth=10.0, loss=0.07)

#: Table V's final segment: bandwidth 4 with 7 % loss.
SEVERE = LinkConditions(bandwidth=4.0, loss=0.07)

#: Table V's bandwidth-1 regime: no frame fits inside the deadline.
DEAD = LinkConditions(bandwidth=1.0, loss=0.0)

_PROFILES: Dict[str, LinkConditions] = {
    "ideal": IDEAL,
    "congested": CONGESTED,
    "lossy": LOSSY,
    "severe": SEVERE,
    "dead": DEAD,
}


def named_profile(name: str) -> LinkConditions:
    """Look up a preset by name (``ideal|congested|lossy|severe|dead``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown profile {name!r}; available: {sorted(_PROFILES)}") from None
