"""Network emulation substrate (the paper's NetEm, §IV-C.1).

The paper degrades the Pi-to-server path with NetEm rate limits and
packet loss.  This package reimplements the relevant mechanics in the
DES kernel:

* :class:`~repro.netem.link.Link` — a half-duplex serializer with a
  byte-capped FIFO queue (rate limiting => serialization + queueing
  delay, i.e. bufferbloat under overload), i.i.d. per-packet loss with
  ARQ retransmission stalls (loss => delay inflation *and* goodput
  collapse, as on a real wireless MAC), propagation delay and jitter;
* :class:`~repro.netem.link.LinkConditions` — an immutable condition
  tuple (bandwidth, loss, delay, jitter) with the paper's abstract
  "kbps" bandwidth units calibrated in :data:`BANDWIDTH_UNIT_BPS`;
* :class:`~repro.netem.schedule.NetworkSchedule` — piecewise-constant
  condition timelines (paper Table V);
* :mod:`~repro.netem.profiles` — named presets used across tests,
  examples and benchmarks.
"""

from repro.netem.commands import schedule_script, tc_commands
from repro.netem.link import (
    BANDWIDTH_UNIT_BPS,
    ConditionBox,
    Link,
    LinkConditions,
    LinkStats,
)
from repro.netem.loss import GilbertElliottChain, GilbertElliottParams
from repro.netem.packet import MTU_BYTES, PACKET_PAYLOAD_BYTES, packets_for
from repro.netem.schedule import NetworkSchedule, SchedulePhase
from repro.netem.profiles import (
    CONGESTED,
    IDEAL,
    LOSSY,
    SEVERE,
    named_profile,
)
from repro.netem.traces import from_trace, random_walk_schedule, sawtooth_schedule

__all__ = [
    "BANDWIDTH_UNIT_BPS",
    "CONGESTED",
    "ConditionBox",
    "GilbertElliottChain",
    "GilbertElliottParams",
    "IDEAL",
    "LOSSY",
    "Link",
    "LinkConditions",
    "LinkStats",
    "MTU_BYTES",
    "NetworkSchedule",
    "PACKET_PAYLOAD_BYTES",
    "SEVERE",
    "SchedulePhase",
    "from_trace",
    "named_profile",
    "packets_for",
    "random_walk_schedule",
    "sawtooth_schedule",
    "schedule_script",
    "tc_commands",
]
