"""Synthetic network traces: beyond piecewise-constant schedules.

Table V switches conditions at six hand-picked instants; real wireless
paths drift continuously (the paper cites [21], adaptive congestion
control for *unpredictable cellular networks*).  This module generates
trace-driven :class:`NetworkSchedule` objects:

* :func:`random_walk_schedule` — geometric random walk on bandwidth
  with occasional loss episodes, bounded to a configured range;
* :func:`sawtooth_schedule` — deterministic ramp-down/ramp-up cycles
  (elevator/garage passes for a mobile device);
* :func:`from_trace` — wrap externally supplied (time, bandwidth,
  loss) samples, e.g. replayed measurements.

All generators emit ordinary schedules, so every experiment utility
(scenarios, fleets, benches) consumes them unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.netem.link import LinkConditions
from repro.netem.schedule import NetworkSchedule, SchedulePhase


def from_trace(
    times: Sequence[float],
    bandwidths: Sequence[float],
    losses: Optional[Sequence[float]] = None,
) -> NetworkSchedule:
    """Build a schedule from parallel sample arrays.

    ``losses`` are fractions in [0, 1); omitted means lossless.
    """
    if len(times) != len(bandwidths):
        raise ValueError("times and bandwidths must have equal length")
    if losses is not None and len(losses) != len(times):
        raise ValueError("losses must match times in length")
    if not times:
        raise ValueError("empty trace")
    phases = []
    for i, t in enumerate(times):
        loss = float(losses[i]) if losses is not None else 0.0
        phases.append(
            SchedulePhase(float(t), LinkConditions(bandwidth=float(bandwidths[i]), loss=loss))
        )
    return NetworkSchedule(phases)


def random_walk_schedule(
    duration: float,
    rng: np.random.Generator,
    step_period: float = 2.0,
    bandwidth_range: "tuple[float, float]" = (1.0, 10.0),
    volatility: float = 0.25,
    loss_episode_rate: float = 0.02,
    episode_loss: float = 0.07,
    initial_bandwidth: Optional[float] = None,
) -> NetworkSchedule:
    """Geometric random walk on bandwidth with Poisson loss episodes.

    Every ``step_period`` seconds the bandwidth multiplies by
    ``exp(volatility * z)`` (reflected into ``bandwidth_range``); each
    step independently starts a loss episode with probability
    ``loss_episode_rate * step_period`` that lasts one step.
    """
    if duration <= 0 or step_period <= 0:
        raise ValueError("duration and step period must be positive")
    lo, hi = bandwidth_range
    if not 0 < lo < hi:
        raise ValueError(f"invalid bandwidth range {bandwidth_range}")
    if volatility < 0:
        raise ValueError("volatility must be >= 0")

    bw = float(initial_bandwidth) if initial_bandwidth is not None else hi
    bw = min(max(bw, lo), hi)
    phases = []
    t = 0.0
    while t < duration:
        loss = episode_loss if rng.random() < loss_episode_rate * step_period else 0.0
        phases.append(SchedulePhase(t, LinkConditions(bandwidth=bw, loss=loss)))
        # geometric step, reflected at the range bounds
        bw *= float(np.exp(volatility * rng.normal()))
        if bw > hi:
            bw = hi * hi / bw
        if bw < lo:
            bw = lo * lo / max(bw, 1e-9)
        bw = min(max(bw, lo), hi)
        t += step_period
    return NetworkSchedule(phases)


def sawtooth_schedule(
    duration: float,
    period: float = 30.0,
    high: float = 10.0,
    low: float = 2.0,
    steps_per_ramp: int = 5,
) -> NetworkSchedule:
    """Deterministic down-then-up bandwidth ramps."""
    if duration <= 0 or period <= 0:
        raise ValueError("duration and period must be positive")
    if steps_per_ramp < 1:
        raise ValueError("need >= 1 step per ramp")
    if not 0 < low < high:
        raise ValueError(f"need 0 < low < high, got {low}, {high}")
    phases = []
    half = period / 2.0
    step_dt = half / steps_per_ramp
    t = 0.0
    while t < duration:
        cycle_t = t % period
        if cycle_t < half:  # ramping down
            frac = cycle_t / half
        else:  # ramping back up
            frac = 1.0 - (cycle_t - half) / half
        bw = high - frac * (high - low)
        phases.append(SchedulePhase(round(t, 9), LinkConditions(bandwidth=bw)))
        t += step_dt
    return NetworkSchedule(phases)
