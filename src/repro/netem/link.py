"""The emulated wireless link.

Model
-----
One :class:`Link` is one direction of the device <-> server path.  It
is a *serializer*: packets leave one at a time at the configured
bandwidth, so rate limiting manifests as serialization plus queueing
delay, exactly as a NetEm token-bucket does.  Per-packet i.i.d. loss is
repaired by ARQ: each lost transmission stalls the link for one
retransmission timeout (RTO) before the retry — the wireless-MAC
behaviour that makes loss *both* a delay and a goodput problem.
Delivered payloads incur an additional propagation delay plus Gaussian
jitter (pipelined: propagation does not occupy the serializer).

Calibration of the paper's bandwidth units
------------------------------------------
Table V expresses bandwidth as "kbps" values 1/4/10.  Taken literally
(1-10 kbit/s) not even a single compressed frame would fit inside the
250 ms deadline, so the label must be an informal unit.  We preserve
the *three regimes* the experiment is built around by calibrating one
unit = :data:`BANDWIDTH_UNIT_BPS` = 320 kbit/s against the ~11.7 kB
default frame (~94 kbit + packet overhead):

* bw=10 (3.2 Mbit/s): ~33 fps of frames — full 30 fps offload fits;
* bw=4 (1.28 Mbit/s): ~13 fps — partial offload only;
* bw=1 (320 kbit/s): serialization alone ~300 ms > deadline — no
  successful offload is possible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional, Tuple

import numpy as np

from repro.netem.loss import GilbertElliottChain, GilbertElliottParams
from repro.netem.packet import PACKET_OVERHEAD_BYTES, packets_for
from repro.sim.core import Environment
from repro.sim.events import Event

#: bits per second represented by one paper bandwidth unit (see above)
BANDWIDTH_UNIT_BPS = 320_000.0


@dataclass(frozen=True)
class LinkConditions:
    """Immutable snapshot of link conditions (one Table V row).

    Attributes:
        bandwidth: paper bandwidth units (``* BANDWIDTH_UNIT_BPS`` bps).
        loss: average per-packet loss probability in [0, 1).
        propagation_delay: one-way latency floor, seconds.
        jitter_sigma: std-dev of Gaussian jitter on propagation, seconds.
        loss_burst: mean consecutive-loss burst length in packets.
            ``1.0`` (the default, and what the paper's NetEm config
            uses) means i.i.d. loss; values > 1 switch the link to a
            Gilbert–Elliott chain with the same *average* loss but
            clustered drops (see :mod:`repro.netem.loss`).
    """

    bandwidth: float = 10.0
    loss: float = 0.0
    propagation_delay: float = 0.008
    jitter_sigma: float = 0.003
    loss_burst: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.propagation_delay < 0 or self.jitter_sigma < 0:
            raise ValueError("delays must be non-negative")
        if self.loss_burst < 1.0:
            raise ValueError(f"loss burst length must be >= 1, got {self.loss_burst}")

    @property
    def bits_per_second(self) -> float:
        return self.bandwidth * BANDWIDTH_UNIT_BPS

    def packet_time(self, payload_bytes: int = 1448) -> float:
        """Serialization seconds for one packet of ``payload_bytes``."""
        return (payload_bytes + PACKET_OVERHEAD_BYTES) * 8.0 / self.bits_per_second


class ConditionBox:
    """Mutable holder sharing one set of conditions between links.

    The NetEm schedule mutates the box; the uplink and downlink read it
    on every transmission, so a condition change takes effect for the
    next packet (like re-running ``tc qdisc change``).
    """

    def __init__(self, conditions: LinkConditions) -> None:
        self._conditions = conditions
        self._listeners: list = []

    @property
    def conditions(self) -> LinkConditions:
        return self._conditions

    def set(self, conditions: LinkConditions) -> None:
        self._conditions = conditions
        for listener in self._listeners:
            listener(conditions)

    def subscribe(self, listener: Callable[[LinkConditions], None]) -> None:
        self._listeners.append(listener)


@dataclass
class LinkStats:
    """Counters exposed for tests and reports."""

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_dropped_overflow: int = 0
    frames_dropped_loss: int = 0
    packets_sent: int = 0
    retransmissions: int = 0
    bytes_delivered: int = 0

    def absorb_fluid(self, frames: int, packets: int, nbytes: int) -> None:
        """Credit frames carried analytically by a fluid window.

        Fluid windows only open on loss-free links with an idle queue,
        so every absorbed frame is sent, delivered, and overhead-free —
        the counters move exactly as the serializer would have moved
        them.
        """
        self.frames_sent += frames
        self.frames_delivered += frames
        self.packets_sent += packets
        self.bytes_delivered += nbytes

    @property
    def frames_in_flight_or_lost(self) -> int:
        return self.frames_sent - self.frames_delivered - self.dropped

    @property
    def dropped(self) -> int:
        return self.frames_dropped_overflow + self.frames_dropped_loss


class Link:
    """One direction of the emulated path.

    Payloads are opaque objects; callers provide their size and a
    delivery callback.  Drops (queue overflow or ARQ give-up) are
    silent, as on a real network — the *caller's* deadline bookkeeping
    turns silence into timeouts.
    """

    #: per-packet transmission attempts before the frame is abandoned
    MAX_ATTEMPTS = 7

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        box: ConditionBox,
        name: str = "uplink",
        queue_bytes_cap: float = 131_072.0,
    ) -> None:
        self.env = env
        self.rng = rng
        self.box = box
        self.name = name
        self.queue_bytes_cap = queue_bytes_cap
        self.stats = LinkStats()
        self._queue: Deque[Tuple[int, Any, Callable[[Any], None]]] = deque()
        self._queued_bytes = 0
        self._wakeup: Optional[Event] = None
        self._ge_chain = GilbertElliottChain()
        self._proc = env.process(self._serializer(), name=f"link:{name}")

    # ------------------------------------------------------------------
    @property
    def conditions(self) -> LinkConditions:
        return self.box.conditions

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def send(self, nbytes: int, payload: Any, deliver: Callable[[Any], None]) -> bool:
        """Enqueue a payload for transmission.

        Returns False (tail drop) when the queue byte cap would be
        exceeded.  On delivery, ``deliver(payload)`` is invoked at the
        arrival instant.
        """
        if nbytes < 0:
            raise ValueError(f"negative payload size {nbytes}")
        self.stats.frames_sent += 1
        tracer = self.env.tracer
        if self._queued_bytes + nbytes > self.queue_bytes_cap and self._queue:
            self.stats.frames_dropped_overflow += 1
            if tracer is not None:
                tracer.link_overflow(self.name, payload, self.env.now, nbytes)
            return False
        if tracer is not None:
            # The wrapped callback closes the traversal span at the
            # delivery instant; untraced payloads pass through as-is.
            _span, deliver = tracer.link_send(
                self.name, payload, self.env.now, nbytes, deliver, self.env
            )
        self._queue.append((nbytes, payload, deliver))
        self._queued_bytes += nbytes
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return True

    # ------------------------------------------------------------------
    def _serializer(self):
        """The link process: transmit queued payloads one at a time."""
        env = self.env
        while True:
            if not self._queue:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
                continue

            nbytes, payload, deliver = self._queue.popleft()
            self._queued_bytes -= nbytes

            cond = self.box.conditions
            abandoned = False
            for pkt_payload in self._packet_sizes(nbytes):
                pkt_time = cond.packet_time(pkt_payload)
                attempts = 1
                while True:
                    self.stats.packets_sent += 1
                    yield env.sleep(pkt_time)
                    if not self._packet_lost(cond):
                        break  # got through
                    attempts += 1
                    self.stats.retransmissions += 1
                    if attempts > self.MAX_ATTEMPTS:
                        abandoned = True
                        break
                    # Loss detection stall before the retry occupies
                    # the channel (wireless MAC behaviour).
                    yield env.sleep(self._rto(cond))
                if abandoned:
                    break

            if abandoned:
                self.stats.frames_dropped_loss += 1
                if env.tracer is not None:
                    env.tracer.link_drop(payload, env.now, "loss")
                continue

            self.stats.frames_delivered += 1
            self.stats.bytes_delivered += nbytes
            # Propagation is pipelined: hand off to a fire-and-forget
            # delayed delivery so the serializer moves on immediately.
            delay = cond.propagation_delay
            if cond.jitter_sigma > 0:
                delay = max(0.0, delay + self.rng.normal(0.0, cond.jitter_sigma))
            if env.slowpath:
                env.process(self._deliver_after(delay, payload, deliver))
            else:
                # One heap entry per in-flight payload instead of a
                # process + init event + timeout.
                env.call_later(delay, self._deliver_cb, value=(payload, deliver))

    def _deliver_after(self, delay: float, payload: Any, deliver: Callable[[Any], None]):
        yield self.env.timeout(delay)
        deliver(payload)

    @staticmethod
    def _deliver_cb(event: Event) -> None:
        payload, deliver = event.value
        deliver(payload)

    def _packet_lost(self, cond: LinkConditions) -> bool:
        """One transmission attempt's fate under the current conditions."""
        if cond.loss <= 0.0:
            return False
        if cond.loss_burst <= 1.0:
            return bool(self.rng.random() < cond.loss)
        params = GilbertElliottParams.from_average(cond.loss, cond.loss_burst)
        return self._ge_chain.step(params, self.rng)

    @staticmethod
    def _rto(cond: LinkConditions) -> float:
        """Retransmission stall: detection timeout before the retry."""
        return max(0.05, 2.0 * cond.propagation_delay + 0.02)

    @staticmethod
    def _packet_sizes(nbytes: int):
        """Payload byte counts of the packets carrying ``nbytes``."""
        from repro.netem.packet import PACKET_PAYLOAD_BYTES

        n = packets_for(nbytes)
        for i in range(n):
            if i < n - 1:
                yield PACKET_PAYLOAD_BYTES
            else:
                last = nbytes - (n - 1) * PACKET_PAYLOAD_BYTES
                yield max(last, 1)
