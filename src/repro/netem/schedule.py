"""Piecewise-constant network condition schedules (paper Table V)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.netem.link import ConditionBox, LinkConditions
from repro.sim.core import Environment


@dataclass(frozen=True)
class SchedulePhase:
    """One row of a schedule: conditions from ``start`` onward."""

    start: float
    conditions: LinkConditions

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"phase start must be >= 0, got {self.start}")


class NetworkSchedule:
    """An ordered timeline of link conditions.

    Construct from ``(start_time, conditions)`` pairs; apply to a
    :class:`ConditionBox` inside a simulation with :meth:`install`,
    or query statically with :meth:`at`.
    """

    def __init__(self, phases: Sequence[SchedulePhase]) -> None:
        if not phases:
            raise ValueError("schedule needs at least one phase")
        ordered = sorted(phases, key=lambda p: p.start)
        if ordered[0].start != 0.0:
            raise ValueError("first phase must start at t=0")
        starts = [p.start for p in ordered]
        if len(set(starts)) != len(starts):
            raise ValueError("duplicate phase start times")
        self.phases: List[SchedulePhase] = list(ordered)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple]) -> "NetworkSchedule":
        """Build from ``(start, bandwidth, loss_percent)`` tuples."""
        return cls(
            [
                SchedulePhase(
                    start=float(start),
                    conditions=LinkConditions(bandwidth=bw, loss=loss_pct / 100.0),
                )
                for start, bw, loss_pct in rows
            ]
        )

    def at(self, t: float) -> LinkConditions:
        """Conditions in effect at time ``t``."""
        current = self.phases[0].conditions
        for phase in self.phases:
            if phase.start <= t:
                current = phase.conditions
            else:
                break
        return current

    @property
    def change_times(self) -> List[float]:
        return [p.start for p in self.phases]

    def install(
        self,
        env: Environment,
        box: ConditionBox,
        on_change: Optional[Callable[[float, LinkConditions], None]] = None,
    ) -> None:
        """Drive ``box`` through the schedule inside ``env``."""

        def driver():
            for phase in self.phases:
                if phase.start > env.now:
                    yield env.timeout(phase.start - env.now)
                box.set(phase.conditions)
                if on_change is not None:
                    on_change(env.now, phase.conditions)

        env.process(driver(), name="netem-schedule")
