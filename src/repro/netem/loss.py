"""Packet-loss processes: i.i.d. (NetEm's default) and Gilbert–Elliott.

NetEm's plain ``loss X%`` drops packets independently — that is what
the paper injects and what :class:`~repro.netem.link.Link` does by
default.  Real wireless loss, however, is *bursty* (the paper itself
cites [37]: wireless paths see loss "in the tens of percentage
points", typically clustered).  NetEm models this with a
Gilbert–Elliott chain, and so do we:

* **Good** state: no loss;
* **Bad** state: every packet lost;
* transitions chosen so the stationary loss rate equals the configured
  average and the mean bad-state sojourn is ``burst_length`` packets.

With ``burst_length = 1`` the chain's per-packet loss *given the
configured average* reduces to near-i.i.d. behaviour; larger values
concentrate the same average loss into outage bursts, which stresses
controllers very differently (see ``benchmarks/bench_bursty_loss.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GilbertElliottParams:
    """Transition probabilities of the two-state loss chain."""

    p_good_to_bad: float
    p_bad_to_good: float

    def __post_init__(self) -> None:
        for name, p in (
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")

    @property
    def stationary_loss(self) -> float:
        """Long-run fraction of packets lost."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            return 0.0
        return self.p_good_to_bad / denom

    @property
    def mean_burst_length(self) -> float:
        """Expected consecutive losses once in the bad state."""
        if self.p_bad_to_good == 0.0:
            return float("inf")
        return 1.0 / self.p_bad_to_good

    @classmethod
    def from_average(
        cls, average_loss: float, burst_length: float
    ) -> "GilbertElliottParams":
        """Parametrize by observable quantities.

        Args:
            average_loss: stationary loss fraction in [0, 1).
            burst_length: mean consecutive losses (>= 1).
        """
        if not 0.0 <= average_loss < 1.0:
            raise ValueError(f"average loss must be in [0, 1), got {average_loss}")
        if burst_length < 1.0:
            raise ValueError(f"burst length must be >= 1, got {burst_length}")
        if average_loss == 0.0:
            return cls(0.0, 1.0)
        p_bg = 1.0 / burst_length
        p_gb = average_loss * p_bg / (1.0 - average_loss)
        return cls(p_good_to_bad=min(p_gb, 1.0), p_bad_to_good=p_bg)


class GilbertElliottChain:
    """Stateful per-link loss chain.

    The chain is stepped once per packet *transmission attempt* with
    the parameters derived from the link's current conditions, so a
    schedule change re-parametrizes it without resetting the state.
    """

    def __init__(self) -> None:
        self._bad = False

    @property
    def in_bad_state(self) -> bool:
        return self._bad

    def reset(self) -> None:
        self._bad = False

    def step(self, params: GilbertElliottParams, rng: np.random.Generator) -> bool:
        """Advance one packet; returns True if this packet is lost."""
        if self._bad:
            if rng.random() < params.p_bad_to_good:
                self._bad = False
        else:
            if rng.random() < params.p_good_to_bad:
                self._bad = True
        return self._bad
