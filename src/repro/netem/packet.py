"""Packetization helpers."""

from __future__ import annotations

import math

#: Ethernet-class MTU — NetEm shapes at the IP layer, so we do too.
MTU_BYTES = 1500

#: MTU minus IP + transport headers.
PACKET_PAYLOAD_BYTES = 1448

#: per-packet on-the-wire overhead (headers re-added per packet)
PACKET_OVERHEAD_BYTES = MTU_BYTES - PACKET_PAYLOAD_BYTES


def packets_for(nbytes: int) -> int:
    """Number of packets needed to carry ``nbytes`` of payload."""
    if nbytes < 0:
        raise ValueError(f"negative payload size {nbytes}")
    if nbytes == 0:
        return 1  # a bare request still needs one packet
    return math.ceil(nbytes / PACKET_PAYLOAD_BYTES)


def wire_bytes(nbytes: int) -> int:
    """Total bytes on the wire including per-packet headers."""
    return nbytes + packets_for(nbytes) * PACKET_OVERHEAD_BYTES
