"""Fleet tier: N edge servers, health-aware routing, in-flight failover.

The pieces (see docs/fleet.md):

* :class:`FleetTopology` / :class:`FleetConfig` — pure-data topology
  and knobs, shared by the scenario language and the IO config layer;
* :class:`ServerPool` — hosts the servers in one environment, runs the
  heartbeat prober, owns the eject/probation lifecycle;
* :class:`Router` — per-device policy seam (round-robin, least-loaded,
  latency-aware) with per-server token-bucket admission;
* :mod:`repro.fleet.chaos` — the ``repro chaos --fleet`` twin runner
  (imported explicitly, not re-exported here, to keep this package
  importable from the experiment wiring without a cycle).
"""

from .config import ROUTER_POLICIES, FleetConfig, FleetTopology
from .health import ServerHealth
from .pool import ServerPool
from .router import Router

__all__ = [
    "ROUTER_POLICIES",
    "FleetConfig",
    "FleetTopology",
    "ServerHealth",
    "ServerPool",
    "Router",
]
