"""`ServerPool`: N `EdgeServer` instances plus an active health-check prober.

The pool owns the ejection lifecycle::

    healthy --(crash / stale heartbeat / N consecutive failures)--> ejected
    ejected --(alive again for a full probation window)----------> healthy

Ejected servers are invisible to the :class:`~repro.fleet.router.Router`;
listeners subscribed via :meth:`subscribe_down` (the device's offload
client) are told the instant a server leaves the routing set so they can
fail over in-flight frames.  With ``config.failover`` False the whole
recovery tier is inert — no ejections, no notifications — which is the
ablation baseline for the failover-beats-none invariant.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from .config import FleetConfig
from .health import ServerHealth

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.server import EdgeServer
    from repro.sim import Environment


class ServerPool:
    """Host N servers in one environment and track their health."""

    def __init__(
        self,
        env: "Environment",
        servers: Sequence["EdgeServer"],
        config: Optional[FleetConfig] = None,
    ) -> None:
        if not servers:
            raise ValueError("ServerPool needs at least one server")
        names = [s.name for s in servers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate server names in pool: {names}")
        self.env = env
        self.config = config or FleetConfig()
        self.servers: List["EdgeServer"] = list(servers)
        self.by_name: Dict[str, "EdgeServer"] = {s.name: s for s in servers}
        self.health: Dict[str, ServerHealth] = {
            s.name: ServerHealth(s.name, i, self.config)
            for i, s in enumerate(servers)
        }
        self.mttr_samples: List[float] = []
        self._down_listeners: List[Callable[[str], None]] = []
        # routable members in topology order, rebuilt on every ejection/
        # re-admission so the per-attempt route() never re-filters
        self._healthy: List["EdgeServer"] = list(servers)
        self._prober = env.process(self._probe_loop(), name="fleet:prober")

    # ------------------------------------------------------------------
    # membership

    def subscribe_down(self, callback: Callable[[str], None]) -> None:
        """Register a callback fired (with the server name) on ejection."""
        self._down_listeners.append(callback)

    def healthy(self) -> List["EdgeServer"]:
        """Routable servers, in topology order (cached; do not mutate)."""
        return self._healthy

    @property
    def all_ejected(self) -> bool:
        """Fleet-wide brownout: nothing left to route to."""
        return all(h.ejected for h in self.health.values())

    # ------------------------------------------------------------------
    # lifecycle transitions

    def kill(self, name: str) -> int:
        """Crash a member (ServerKill hook) and eject it immediately."""
        dropped = self.by_name[name].crash()
        self.mark_down(name)
        return dropped

    def restart(self, name: str) -> None:
        """Respawn a crashed member; re-admission waits out probation."""
        self.by_name[name].restart()

    def mark_down(self, name: str) -> None:
        """Eject ``name`` from the routing set and notify listeners.

        No-op when the recovery tier is disabled or the server is
        already out — ejection is idempotent, so data-path failures
        racing the prober cannot double-fire the failover sweep.
        """
        if not self.config.failover:
            return
        health = self.health[name]
        if health.ejected:
            return
        health.ejected = True
        health.ejected_at = self.env.now
        health.healthy_since = None
        health.ejections += 1
        self._rebuild_healthy()
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None:
            tracer.event(self.env.now, "fleet.eject", server=name)
        for callback in list(self._down_listeners):
            callback(name)

    def record_result(self, name: str, ok: bool, rtt: Optional[float] = None) -> None:
        """Fold one data-path outcome into a member's health ledger."""
        health = self.health[name]
        if ok:
            health.consecutive_failures = 0
            health.successes += 1
            if rtt is not None:
                health.observe_rtt(rtt)
            return
        health.failures += 1
        health.consecutive_failures += 1
        if health.consecutive_failures >= self.config.fail_threshold:
            self.mark_down(name)

    # ------------------------------------------------------------------
    # prober

    def _probe_loop(self):
        cfg = self.config
        while True:
            yield self.env.sleep(cfg.probe_period)
            now = self.env.now
            for server in self.servers:
                health = self.health[server.name]
                alive = server.service_alive and not server.paused
                if alive:
                    health.heartbeat.beat(now)
                if not cfg.failover:
                    continue
                if not health.ejected:
                    # catches pause-style crashes (ServerCrash) that never
                    # touch the service process: the heartbeat goes stale
                    if health.heartbeat.is_stale(now, cfg.stale_grace_periods):
                        self.mark_down(server.name)
                    continue
                if not alive:
                    health.healthy_since = None
                    continue
                if health.healthy_since is None:
                    health.healthy_since = now
                if now - health.healthy_since >= cfg.probation:
                    self._readmit(health, now)

    def _readmit(self, health: ServerHealth, now: float) -> None:
        health.ejected = False
        health.readmissions += 1
        health.consecutive_failures = 0
        self._rebuild_healthy()
        if health.ejected_at is not None:
            self.mttr_samples.append(now - health.ejected_at)
        health.ejected_at = None
        health.healthy_since = None
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None:
            tracer.event(now, "fleet.readmit", server=health.name)

    def _rebuild_healthy(self) -> None:
        self._healthy = [
            s for s in self.servers if not self.health[s.name].ejected
        ]

    # ------------------------------------------------------------------
    # reporting

    def extras(self) -> Dict[str, float]:
        """Per-server counters plus fleet MTTR, for QoS extras."""
        out: Dict[str, float] = {}
        for server in self.servers:
            out.update(self.health[server.name].extras())
        if self.mttr_samples:
            out["fleet.mttr_mean"] = sum(self.mttr_samples) / len(self.mttr_samples)
        else:
            out["fleet.mttr_mean"] = 0.0
        out["fleet.mttr_count"] = float(len(self.mttr_samples))
        return out
