"""Per-server health state tracked by the :class:`~repro.fleet.pool.ServerPool`.

One :class:`ServerHealth` per fleet member bundles the three signals the
routing tier consumes:

* a :class:`~repro.supervision.heartbeat.Heartbeat` beaten by the pool's
  prober whenever the server's service loop answers (liveness),
* a :class:`~repro.resilience.budget.RetryBudget` reused as the
  per-server admission token bucket (capacity), and
* an EWMA of observed round-trip times (the latency-aware policy's key).

The ejection lifecycle lives in the pool; this object is the ledger.
"""

from __future__ import annotations

from typing import Optional

from repro.resilience.budget import RetryBudget
from repro.supervision.heartbeat import Heartbeat

from .config import FleetConfig

#: EWMA smoothing for observed per-server RTTs
RTT_ALPHA = 0.2


class ServerHealth:
    """Routing-relevant state and counters for one fleet member."""

    def __init__(self, name: str, index: int, config: FleetConfig) -> None:
        self.name = name
        #: topology position; the deterministic tie-break for every policy
        self.index = index
        self.heartbeat = Heartbeat(f"server:{name}", config.probe_period)
        self.admission = RetryBudget(
            rate=config.admission_rate, burst=config.admission_burst
        )
        #: True while the server is out of the routing set
        self.ejected = False
        #: sim time of the most recent ejection (MTTR anchor)
        self.ejected_at: Optional[float] = None
        #: sim time the server first looked healthy again post-ejection
        self.healthy_since: Optional[float] = None
        #: data-path failures since the last success
        self.consecutive_failures = 0
        #: smoothed observed RTT; None until the first success
        self.ewma_rtt: Optional[float] = None
        # counters surfaced through QoS extras
        self.routed = 0
        self.successes = 0
        self.failures = 0
        self.failed_over_in = 0
        self.failed_over_out = 0
        self.ejections = 0
        self.readmissions = 0

    def observe_rtt(self, rtt: float) -> None:
        if self.ewma_rtt is None:
            self.ewma_rtt = rtt
        else:
            self.ewma_rtt += RTT_ALPHA * (rtt - self.ewma_rtt)

    def extras(self) -> dict:
        """Flat ``fleet.<name>.*`` counters for QoS extras."""
        prefix = f"fleet.{self.name}"
        return {
            f"{prefix}.routed": float(self.routed),
            f"{prefix}.successes": float(self.successes),
            f"{prefix}.failures": float(self.failures),
            f"{prefix}.failed_over_in": float(self.failed_over_in),
            f"{prefix}.failed_over_out": float(self.failed_over_out),
            f"{prefix}.ejections": float(self.ejections),
            f"{prefix}.readmissions": float(self.readmissions),
        }
