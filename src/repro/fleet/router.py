"""Per-device `Router`: pick a healthy, admitting server for each attempt.

The router is a pure policy seam over the shared
:class:`~repro.fleet.pool.ServerPool`.  Each device owns its own router
(so the round-robin cursor is deterministic per device regardless of how
many devices share the pool), while health state and admission buckets
live in the pool and are shared fleet-wide.

Candidate ordering is one of three policies (all with the topology index
as the final, deterministic tie-break):

* ``round_robin``  — rotate through the healthy set;
* ``least_loaded`` — shallowest server queue first;
* ``latency_aware`` — lowest observed EWMA RTT first; servers with no
  observation yet sort first so fresh capacity gets probed.

Each candidate is then charged against its per-server admission token
bucket; a denied bucket means "full right now" and the router moves on.
``route`` returns ``None`` only when no healthy server admits the
request (brownout or fleet-wide overload) — the caller degrades to the
local path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from .pool import ServerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.server import EdgeServer


class Router:
    """Health- and admission-aware server selection for one device."""

    def __init__(self, pool: ServerPool, policy: Optional[str] = None) -> None:
        self.pool = pool
        self.policy = policy or pool.config.policy
        self._rr = 0

    @property
    def failover_enabled(self) -> bool:
        return self.pool.config.failover

    def available(self) -> bool:
        """False during fleet-wide brownout (every server ejected)."""
        return not self.pool.all_ejected

    def route(
        self,
        model_name: Optional[str] = None,
        exclude: Optional[str] = None,
    ) -> Optional["EdgeServer"]:
        """Pick a server for one attempt, or ``None`` if nothing admits.

        ``exclude`` names a server that must not be chosen even if it is
        still nominally healthy — the failover path uses it so a frame
        never retargets the server it is fleeing.
        """
        pool = self.pool
        candidates = pool.healthy()
        if exclude is not None:
            candidates = [s for s in candidates if s.name != exclude]
        if not candidates:
            return None
        now = pool.env.now
        if len(candidates) > 1:
            candidates = self._order(candidates, model_name)
        for server in candidates:
            health = pool.health[server.name]
            if health.admission.try_acquire(now):
                health.routed += 1
                if self.policy == "round_robin":
                    self._rr += 1
                return server
        return None

    def record_result(self, name: str, ok: bool, rtt: Optional[float] = None) -> None:
        self.pool.record_result(name, ok, rtt=rtt)

    def record_failover(self, dead: str, target: str) -> None:
        self.pool.health[dead].failed_over_out += 1
        self.pool.health[target].failed_over_in += 1

    # ------------------------------------------------------------------

    def _order(
        self,
        candidates: Sequence["EdgeServer"],
        model_name: Optional[str],
    ) -> List["EdgeServer"]:
        if self.policy == "round_robin":
            start = self._rr % len(candidates)
            return list(candidates[start:]) + list(candidates[:start])
        if self.policy == "least_loaded":
            return sorted(
                candidates,
                key=lambda s: (s.queue_depth(model_name), self.pool.health[s.name].index),
            )
        # latency_aware: unprobed servers (no EWMA yet) sort first
        def latency_key(server: "EdgeServer"):
            health = self.pool.health[server.name]
            ewma = health.ewma_rtt
            return (0.0 if ewma is None else ewma, health.index)

        return sorted(candidates, key=latency_key)
