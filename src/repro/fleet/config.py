"""Fleet tier configuration: topology + routing/health knobs.

Pure data, importable from anywhere (this module depends on nothing
else in :mod:`repro`, so the scenario language, the IO config layer
and the testbed wiring can all share it without import cycles).

Defaults follow the same budget arguments as the resilience layer:

* **Admission.**  Each server meters ingress through its own token
  bucket (Chakrabarti et al., arXiv:2010.13737): ``admission_rate``
  sustains four 30 fps devices per server, with ``admission_burst``
  absorbing a half-second of synchronized captures.  A denied bucket
  means "this server is full right now" — the router just moves on to
  the next candidate, which is the rate-limited re-routing decision of
  Qiu et al. (arXiv:2208.00485) in its simplest form.
* **Health checking.**  The pool's prober beats each server's
  heartbeat every ``probe_period``; a server that misses
  ``stale_grace_periods`` worth of beats (stalled service loop) or
  racks up ``fail_threshold`` consecutive data-path failures is
  *ejected* — removed from the routing set — and re-admitted only
  after it has looked healthy for a full ``probation`` window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: routing policies the :class:`~repro.fleet.router.Router` implements
ROUTER_POLICIES = ("round_robin", "least_loaded", "latency_aware")


@dataclass(frozen=True)
class FleetConfig:
    """Every knob of the fleet routing/health tier, validated."""

    #: candidate ordering policy (see :data:`ROUTER_POLICIES`)
    policy: str = "round_robin"
    #: per-server admission token bucket: sustained requests/s
    admission_rate: float = 120.0
    #: per-server admission token bucket: burst capacity (tokens)
    admission_burst: float = 60.0
    #: seconds between health-check probes of each server
    probe_period: float = 0.5
    #: missed-beat allowance before a server is declared unhealthy
    #: (in units of ``probe_period``)
    stale_grace_periods: float = 2.5
    #: consecutive data-path failures that eject a server
    fail_threshold: int = 3
    #: seconds a recovered server must look healthy before re-admission
    probation: float = 2.0
    #: master switch for the recovery tier: with failover off, servers
    #: are never ejected and in-flight frames are never re-routed — the
    #: ablation baseline the failover-beats-none invariant compares
    #: against (one toggle, everything else identical)
    failover: bool = True

    def __post_init__(self) -> None:
        if self.policy not in ROUTER_POLICIES:
            raise ValueError(
                f"policy must be one of {ROUTER_POLICIES}, got {self.policy!r}"
            )
        if self.admission_rate <= 0 or self.admission_burst <= 0:
            raise ValueError("admission rate and burst must be positive")
        if self.probe_period <= 0:
            raise ValueError(f"probe_period must be positive, got {self.probe_period}")
        if self.stale_grace_periods <= 0:
            raise ValueError(
                f"stale_grace_periods must be positive, got {self.stale_grace_periods}"
            )
        if self.fail_threshold < 1:
            raise ValueError(
                f"fail_threshold must be >= 1, got {self.fail_threshold}"
            )
        if self.probation < 0:
            raise ValueError(f"probation must be >= 0, got {self.probation}")


@dataclass(frozen=True)
class FleetTopology:
    """N named servers plus the fleet config they run under."""

    servers: Tuple[str, ...]
    config: FleetConfig = field(default_factory=FleetConfig)

    def __post_init__(self) -> None:
        names = tuple(str(n) for n in self.servers)
        if not names:
            raise ValueError("topology needs at least one server")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate server names: {list(names)}")
        object.__setattr__(self, "servers", names)
