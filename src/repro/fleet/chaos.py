"""Fleet chaos: a mid-run `ServerKill` with and without the recovery tier.

``repro chaos --fleet`` runs the same kill schedule twice — identical
seed, topology and fault plan, differing only in
:attr:`~repro.fleet.config.FleetConfig.failover` — and asserts the
fleet invariants:

* **accounting-closed** (both runs): every captured frame settles in
  exactly one terminal state (success, timeout, or local drop); a
  crash loses zero frames to accounting.
* **no-orphaned-inflight** (both runs): no offload record survives the
  run — the kill-time failover sweep settles every in-flight frame as
  failed-over, crash-dropped, or (failover off) a watchdog timeout.
* **failover-exercised**: the kill must catch at least one in-flight
  frame and re-route it to a healthy server.
* **server-readmitted**: the killed server is ejected and re-admitted
  after probation, yielding a fleet MTTR sample.
* **failover-beats-none**: the deadline-violation rate with the
  recovery tier on is *strictly* lower than the ablation's.

Mirrors the warm-vs-cold twin pattern of
:func:`~repro.experiments.chaos.run_supervision_chaos`: one toggle,
everything else identical, so the gap is attributable to failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.device.config import DeviceConfig
from repro.experiments.chaos import ChaosResult, ChaosScenario, _check_to_dict, run_chaos
from repro.experiments.scenario import Scenario
from repro.experiments.standard import framefeedback_factory
from repro.faults.invariants import InvariantCheck
from repro.faults.process import ServerKill
from repro.faults.windows import FaultTimeline

from .config import FleetConfig, FleetTopology

#: default three-server topology for the smoke scenario
DEFAULT_SERVERS: Tuple[str, ...] = ("edge0", "edge1", "edge2")
#: ``(server, start, duration)`` — the kill lands while a frame is in
#: flight to edge0 (so the failover sweep has work to do), and heals
#: mid-run so probation re-admission (and its MTTR sample) happens
#: on-screen
DEFAULT_KILL: Tuple[str, float, float] = ("edge0", 8.34, 10.0)


def fleet_chaos_scenario(
    seed: int = 0,
    total_frames: int = 900,
    servers: Sequence[str] = DEFAULT_SERVERS,
    kill: Tuple[str, float, float] = DEFAULT_KILL,
    failover: bool = True,
    policy: str = "round_robin",
) -> ChaosScenario:
    """One fleet scenario with a named mid-run server kill."""
    name, start, duration = kill
    base = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=total_frames),
        seed=seed,
        topology=FleetTopology(
            servers=tuple(servers),
            config=FleetConfig(policy=policy, failover=failover),
        ),
    )
    return ChaosScenario(
        base=base,
        injectors=[
            ServerKill(FaultTimeline.from_rows([(start, duration)]), server=name)
        ],
    )


def fleet_invariants(
    with_failover: ChaosResult, without_failover: ChaosResult
) -> List[InvariantCheck]:
    """The fleet acceptance invariants over the twin runs."""
    checks: List[InvariantCheck] = []
    for label, result in (
        ("failover", with_failover),
        ("no-failover", without_failover),
    ):
        qos = result.run.qos
        settled = qos.successful + qos.timeouts + qos.dropped_local
        checks.append(
            InvariantCheck(
                name=f"accounting-closed[{label}]",
                passed=settled == qos.total_frames,
                observed=float(settled),
                expected=float(qos.total_frames),
                tolerance=0.0,
                detail=(
                    "every captured frame settles in exactly one terminal "
                    "state (success, timeout, or local drop)"
                ),
            )
        )
        outstanding = qos.extras.get("fleet.outstanding", 0.0)
        checks.append(
            InvariantCheck(
                name=f"no-orphaned-inflight[{label}]",
                passed=outstanding == 0.0,
                observed=outstanding,
                expected=0.0,
                tolerance=0.0,
                detail="no offload record may survive to the end of the run",
            )
        )
    failovers = with_failover.run.qos.extras.get("fleet.failovers", 0.0)
    checks.append(
        InvariantCheck(
            name="failover-exercised",
            passed=failovers >= 1.0,
            observed=failovers,
            expected=1.0,
            tolerance=0.0,
            detail=(
                "the ServerKill must catch at least one in-flight frame "
                "and re-route it to a healthy server"
            ),
        )
    )
    mttr_count = with_failover.run.qos.extras.get("fleet.mttr_count", 0.0)
    checks.append(
        InvariantCheck(
            name="server-readmitted",
            passed=mttr_count >= 1.0,
            observed=mttr_count,
            expected=1.0,
            tolerance=0.0,
            detail=(
                "the killed server must be ejected and re-admitted after "
                "probation, recording a fleet MTTR sample"
            ),
        )
    )
    v_on = with_failover.run.qos.mean_violation_rate
    v_off = without_failover.run.qos.mean_violation_rate
    checks.append(
        InvariantCheck(
            name="failover-beats-none",
            passed=v_on < v_off,
            observed=v_on,
            expected=v_off,
            tolerance=0.0,
            detail=(
                "deadline-violation rate with the recovery tier must be "
                "strictly lower than the same scenario with failover off"
            ),
        )
    )
    return checks


@dataclass
class FleetChaosResult:
    """One kill schedule executed twice: recovery tier on, then off."""

    failover: ChaosResult
    no_failover: ChaosResult
    fleet_invariants: List[InvariantCheck] = field(default_factory=list)

    @property
    def all_invariants_hold(self) -> bool:
        return (
            self.failover.all_invariants_hold
            and self.no_failover.all_invariants_hold
            and all(c.passed for c in self.fleet_invariants)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": "fleet",
            "failover": _run_dict(self.failover),
            "no_failover": _run_dict(self.no_failover),
            "fleet_invariants": [_check_to_dict(c) for c in self.fleet_invariants],
            "verdict": "PASS" if self.all_invariants_hold else "FAIL",
        }


def _run_dict(result: ChaosResult) -> Dict[str, object]:
    """ChaosResult.to_dict plus the fleet counters it doesn't carry."""
    doc = result.to_dict()
    qos = result.run.qos
    doc["qos"]["dropped_local"] = qos.dropped_local
    doc["fleet"] = {
        key: value
        for key, value in sorted(qos.extras.items())
        if key.startswith("fleet.")
    }
    return doc


def run_fleet_chaos(
    seed: int = 0,
    total_frames: int = 900,
    servers: Sequence[str] = DEFAULT_SERVERS,
    kill: Tuple[str, float, float] = DEFAULT_KILL,
    policy: str = "round_robin",
) -> FleetChaosResult:
    """Run the kill schedule twice (failover on, then off) and compare."""
    with_failover = run_chaos(
        fleet_chaos_scenario(
            seed=seed,
            total_frames=total_frames,
            servers=servers,
            kill=kill,
            failover=True,
            policy=policy,
        )
    )
    without_failover = run_chaos(
        fleet_chaos_scenario(
            seed=seed,
            total_frames=total_frames,
            servers=servers,
            kill=kill,
            failover=False,
            policy=policy,
        )
    )
    return FleetChaosResult(
        failover=with_failover,
        no_failover=without_failover,
        fleet_invariants=fleet_invariants(with_failover, without_failover),
    )
